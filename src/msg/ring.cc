#include "src/msg/ring.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "src/common/check.h"
#include "src/msg/wire.h"
#include "src/netsim/fault_plane.h"

namespace cxlpool::msg {

namespace {
constexpr uint64_t kSeqOffset = 0;
constexpr uint64_t kChunkLenOffset = 4;
constexpr uint64_t kMsgLenOffset = 6;
constexpr uint64_t kPayloadOffset = kSlotHeaderSize;

bool IsPowerOfTwo(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

RingSender::RingSender(cxl::HostAdapter& host, const RingConfig& config)
    : host_(host),
      config_(config),
      cursor_addr_(config.base + static_cast<uint64_t>(config.slots) * kSlotSize),
      backoff_(config.poll_min, config.poll_max) {
  CXLPOOL_CHECK(IsPowerOfTwo(config.slots));
  CXLPOOL_CHECK(config.base % kCachelineSize == 0);
}

sim::Task<Status> RingSender::WaitForSpace(uint32_t chunks_needed) {
  if (chunks_needed > config_.slots) {
    co_return InvalidArgument("message needs more chunks than the ring has slots");
  }
  Nanos give_up_at =
      config_.full_wait > 0 ? host_.loop().now() + config_.full_wait : 0;
  while (head_ + chunks_needed - cached_tail_ > config_.slots) {
    // Ring looks full: refresh the consumer cursor from the pool.
    ++stats_.cursor_refreshes;
    CO_RETURN_IF_ERROR(co_await host_.Invalidate(cursor_addr_, 8));
    std::array<std::byte, 8> buf;
    CO_RETURN_IF_ERROR(co_await host_.Load(cursor_addr_, buf));
    cached_tail_ = wire::GetU64(buf.data());
    if (head_ + chunks_needed - cached_tail_ <= config_.slots) {
      backoff_.Reset();
      break;
    }
    if (give_up_at != 0 && host_.loop().now() >= give_up_at) {
      ++full_rejects_;
      co_return Overloaded("ring full past full_wait");
    }
    co_await sim::Delay(host_.loop(), backoff_.NextDelay());
  }
  co_return OkStatus();
}

sim::Task<Status> RingSender::Send(std::span<const std::byte> payload) {
  if (payload.size() > kMaxMessageSize) {
    co_return InvalidArgument("message exceeds kMaxMessageSize");
  }
  uint32_t chunks = std::max<uint32_t>(
      1, static_cast<uint32_t>((payload.size() + kSlotPayload - 1) / kSlotPayload));
  CO_RETURN_IF_ERROR(co_await WaitForSpace(chunks));

  size_t offset = 0;
  for (uint32_t c = 0; c < chunks; ++c) {
    size_t chunk_len = std::min<size_t>(kSlotPayload, payload.size() - offset);
    std::array<std::byte, kSlotSize> line{};
    wire::PutU32(line.data() + kSeqOffset, static_cast<uint32_t>(head_ + 1));
    wire::PutU16(line.data() + kChunkLenOffset, static_cast<uint16_t>(chunk_len));
    wire::PutU16(line.data() + kMsgLenOffset, static_cast<uint16_t>(payload.size()));
    if (chunk_len > 0) {  // empty messages have a null payload pointer
      std::memcpy(line.data() + kPayloadOffset, payload.data() + offset,
                  chunk_len);
    }

    uint64_t slot_addr = config_.base + (head_ % config_.slots) * kSlotSize;
    // The whole line is published with one non-temporal store: payload and
    // the seq flag become visible atomically at cacheline granularity.
    CO_RETURN_IF_ERROR(co_await host_.StoreNt(slot_addr, line));
    ++stats_.nt_store_runs;
    ++head_;
    offset += chunk_len;
  }
  co_return OkStatus();
}

namespace {
uint32_t ChunksFor(size_t payload_size) {
  return std::max<uint32_t>(
      1, static_cast<uint32_t>((payload_size + kSlotPayload - 1) / kSlotPayload));
}
}  // namespace

sim::Task<Status> RingSender::SendBatch(
    std::span<const std::span<const std::byte>> payloads) {
  if (payloads.empty()) {
    co_return OkStatus();
  }
  if (payloads.size() == 1) {
    co_return co_await Send(payloads[0]);
  }
  uint32_t total_chunks = 0;
  for (const auto& p : payloads) {
    if (p.size() > kMaxMessageSize) {
      co_return InvalidArgument("message exceeds kMaxMessageSize");
    }
    total_chunks += ChunksFor(p.size());
  }
  if (total_chunks > config_.slots) {
    // A batch bigger than the ring can never fit in one reservation;
    // degrade to sequential sends rather than reject.
    for (const auto& p : payloads) {
      CO_RETURN_IF_ERROR(co_await Send(p));
    }
    co_return OkStatus();
  }
  // One reservation for the whole batch: at most one cursor refresh
  // (amortized over every message) instead of one per Send.
  CO_RETURN_IF_ERROR(co_await WaitForSpace(total_chunks));
  ++stats_.batch_sends;
  stats_.batched_messages += payloads.size();

  // Materialize every slot line up front, in publish order.
  std::vector<std::byte> lines(static_cast<size_t>(total_chunks) * kSlotSize,
                               std::byte{0});
  uint64_t seq_base = head_;
  size_t chunk_idx = 0;
  for (const auto& p : payloads) {
    size_t offset = 0;
    uint32_t chunks = ChunksFor(p.size());
    for (uint32_t c = 0; c < chunks; ++c, ++chunk_idx) {
      size_t chunk_len = std::min<size_t>(kSlotPayload, p.size() - offset);
      std::byte* line = lines.data() + chunk_idx * kSlotSize;
      wire::PutU32(line + kSeqOffset,
                   static_cast<uint32_t>(seq_base + chunk_idx + 1));
      wire::PutU16(line + kChunkLenOffset, static_cast<uint16_t>(chunk_len));
      wire::PutU16(line + kMsgLenOffset, static_cast<uint16_t>(p.size()));
      if (chunk_len > 0) {
        std::memcpy(line + kPayloadOffset, p.data() + offset, chunk_len);
      }
      offset += chunk_len;
    }
  }

  // Publish ring-contiguous runs with single multi-line non-temporal
  // stores (write combining): the CXL write pays its first-line latency
  // once per run and per_line_pipelined for each further line. Runs are
  // awaited in order so the published prefix always grows monotonically —
  // the receiver can never observe message k+1 without message k.
  uint32_t published = 0;
  while (published < total_chunks) {
    uint64_t slot = (head_ % config_.slots);
    uint32_t run = std::min<uint32_t>(total_chunks - published,
                                      config_.slots - static_cast<uint32_t>(slot));
    uint64_t run_addr = config_.base + slot * kSlotSize;
    std::span<const std::byte> run_bytes(
        lines.data() + static_cast<size_t>(published) * kSlotSize,
        static_cast<size_t>(run) * kSlotSize);
    CO_RETURN_IF_ERROR(co_await host_.StoreNt(run_addr, run_bytes));
    ++stats_.nt_store_runs;
    published += run;
    head_ += run;
  }
  co_return OkStatus();
}

RingReceiver::RingReceiver(cxl::HostAdapter& host, const RingConfig& config)
    : host_(host),
      config_(config),
      cursor_addr_(config.base + static_cast<uint64_t>(config.slots) * kSlotSize),
      backoff_(config.poll_min, config.poll_max) {
  CXLPOOL_CHECK(IsPowerOfTwo(config.slots));
}

sim::Task<Result<uint32_t>> RingReceiver::LoadSlot(
    uint64_t index, std::array<std::byte, kSlotSize>* line) {
  // Burst drain: serve from the cached window when it covers this slot.
  // Every cached slot was observed published, and a published slot is
  // immutable until our cursor passes it, so no re-invalidation is needed.
  if (win_valid_ > 0 && index >= win_start_ && index - win_start_ < win_valid_) {
    ++stats_.window_hits;
    std::memcpy(line->data(),
                window_.data() + (index - win_start_) * kSlotSize, kSlotSize);
    co_return wire::GetU32(line->data() + kSeqOffset);
  }
  win_valid_ = 0;
  uint64_t slot = index % config_.slots;
  uint32_t window =
      std::min(std::max<uint32_t>(1, cur_window_),
               std::max<uint32_t>(1, config_.recv_window));
  window = static_cast<uint32_t>(
      std::min<uint64_t>(window, config_.slots - slot));  // clamp at wrap
  uint64_t slot_addr = config_.base + slot * kSlotSize;
  if (window_.size() < static_cast<size_t>(window) * kSlotSize) {
    window_.resize(static_cast<size_t>(window) * kSlotSize);
  }
  // Software coherence: drop any cached copy before loading, or we would
  // spin on a stale line forever. One invalidate+load covers the whole
  // window — the CXL read pipelines the extra lines instead of paying the
  // full first-line latency per slot.
  Status st = co_await host_.Invalidate(slot_addr, window * kSlotSize);
  if (!st.ok()) {
    co_return st;
  }
  std::span<std::byte> bytes(window_.data(),
                             static_cast<size_t>(window) * kSlotSize);
  st = co_await host_.Load(slot_addr, bytes);
  if (!st.ok()) {
    co_return st;
  }
  ++stats_.window_loads;
  // Cache only the published prefix; an unpublished slot may be written
  // at any moment and must be re-read fresh next time.
  uint32_t valid = 0;
  while (valid < window &&
         wire::GetU32(window_.data() + static_cast<size_t>(valid) * kSlotSize +
                      kSeqOffset) == static_cast<uint32_t>(index + valid + 1)) {
    ++valid;
  }
  win_start_ = index;
  win_valid_ = valid;
  // Adapt: a fully-valid scan means the producer is ahead of us — widen
  // the next load. A (near-)empty scan means we are caught up and paying
  // for unpublished lines — fall back to single-slot loads.
  if (valid == window) {
    cur_window_ = std::min<uint32_t>(std::max<uint32_t>(1, cur_window_) * 2,
                                     std::max<uint32_t>(1, config_.recv_window));
  } else if (valid <= 1) {
    cur_window_ = 1;
  }
  std::memcpy(line->data(), window_.data(), kSlotSize);
  co_return wire::GetU32(line->data() + kSeqOffset);
}

sim::Task<Status> RingReceiver::PublishCursor() {
  std::array<std::byte, 8> buf;
  wire::PutU64(buf.data(), tail_);
  CO_RETURN_IF_ERROR(co_await host_.StoreNt(cursor_addr_, buf));
  last_published_cursor_ = tail_;
  co_return OkStatus();
}

sim::Task<Status> RingReceiver::ConsumeMessage(
    std::array<std::byte, kSlotSize> first_line, std::vector<std::byte>* out) {
  uint16_t msg_len = wire::GetU16(first_line.data() + kMsgLenOffset);
  uint16_t chunk_len = wire::GetU16(first_line.data() + kChunkLenOffset);
  out->insert(out->end(), first_line.data() + kPayloadOffset,
              first_line.data() + kPayloadOffset + chunk_len);
  ++tail_;
  size_t received = chunk_len;

  while (received < msg_len) {
    // Continuation chunks: the sender is already committed to writing
    // them, so spin at the minimum cadence without a deadline.
    std::array<std::byte, kSlotSize> line;
    auto seq_or = co_await LoadSlot(tail_, &line);
    if (!seq_or.ok()) {
      co_return seq_or.status();
    }
    if (*seq_or != static_cast<uint32_t>(tail_ + 1)) {
      co_await sim::Delay(host_.loop(), config_.poll_min);
      continue;
    }
    chunk_len = wire::GetU16(line.data() + kChunkLenOffset);
    out->insert(out->end(), line.data() + kPayloadOffset,
                line.data() + kPayloadOffset + chunk_len);
    received += chunk_len;
    ++tail_;
  }

  ++messages_;
  if (tail_ - last_published_cursor_ >= config_.slots / 4) {
    CO_RETURN_IF_ERROR(co_await PublishCursor());
  }
  co_return OkStatus();
}

bool RingReceiver::FaultActive() const {
  return config_.fault_plane != nullptr && config_.fault_plane->active();
}

Nanos RingReceiver::NextDelayedRelease() const {
  Nanos earliest = 0;
  for (const auto& [release_at, bytes] : delayed_) {
    if (earliest == 0 || release_at < earliest) {
      earliest = release_at;
    }
  }
  return earliest;
}

bool RingReceiver::DeliverStashed(std::vector<std::byte>* out) {
  if (!dup_pending_.empty()) {
    const std::vector<std::byte>& m = dup_pending_.front();
    out->insert(out->end(), m.begin(), m.end());
    dup_pending_.pop_front();
    return true;
  }
  if (delayed_.empty()) {
    return false;
  }
  Nanos now = host_.loop().now();
  size_t best = delayed_.size();
  for (size_t i = 0; i < delayed_.size(); ++i) {
    if (delayed_[i].first <= now &&
        (best == delayed_.size() || delayed_[i].first < delayed_[best].first)) {
      best = i;
    }
  }
  if (best == delayed_.size()) {
    return false;
  }
  const std::vector<std::byte>& m = delayed_[best].second;
  out->insert(out->end(), m.begin(), m.end());
  delayed_.erase(delayed_.begin() + static_cast<ptrdiff_t>(best));
  return true;
}

bool RingReceiver::JudgeConsumed(std::vector<std::byte>* out) {
  netsim::FaultPlane::FrameFate fate =
      config_.fault_plane->Judge(config_.src_host, config_.dst_host);
  switch (fate.verdict) {
    case netsim::FaultPlane::Verdict::kDeliver:
      out->insert(out->end(), scratch_.begin(), scratch_.end());
      return true;
    case netsim::FaultPlane::Verdict::kDrop:
      ++stats_.faults_dropped;
      return false;
    case netsim::FaultPlane::Verdict::kDuplicate:
      ++stats_.faults_duplicated;
      out->insert(out->end(), scratch_.begin(), scratch_.end());
      dup_pending_.push_back(scratch_);
      return true;
    case netsim::FaultPlane::Verdict::kDelay:
      ++stats_.faults_delayed;
      delayed_.emplace_back(host_.loop().now() + fate.delay, scratch_);
      return false;
  }
  return false;
}

sim::Task<Status> RingReceiver::Recv(std::vector<std::byte>* out, Nanos deadline) {
  for (;;) {
    // Stashed fault-plane deliveries (duplicates, matured delays) come
    // before new ring traffic — a delayed message overtaken by later ones
    // is exactly the reorder the model wants.
    if (DeliverStashed(out)) {
      co_return OkStatus();
    }
    std::array<std::byte, kSlotSize> line;
    auto seq_or = co_await LoadSlot(tail_, &line);
    if (!seq_or.ok()) {
      co_return seq_or.status();
    }
    if (*seq_or == static_cast<uint32_t>(tail_ + 1)) {
      backoff_.Reset();
      if (!FaultActive()) {
        co_return co_await ConsumeMessage(line, out);
      }
      // Consume fully (slots reclaimed, cursor flow intact), THEN judge:
      // the sender must never block on a partition, only the delivery.
      scratch_.clear();
      CO_RETURN_IF_ERROR(co_await ConsumeMessage(line, &scratch_));
      if (JudgeConsumed(out)) {
        co_return OkStatus();
      }
      continue;  // dropped or delayed: keep polling
    }
    // Idle: lazily publish the consumer cursor. Without this a sender
    // needing many contiguous slots can wait forever for credits the
    // batched publish in ConsumeMessage would never flush (deadlock).
    if (tail_ != last_published_cursor_) {
      CO_RETURN_IF_ERROR(co_await PublishCursor());
    }
    Nanos now = host_.loop().now();
    if (now >= deadline) {
      co_return DeadlineExceeded("no message before deadline");
    }
    Nanos delay = std::min(backoff_.NextDelay(), deadline - now);
    // Wake when a delayed message matures, even if the ring stays idle.
    Nanos release = NextDelayedRelease();
    if (release > now) {
      delay = std::min(delay, release - now);
    }
    co_await sim::Delay(host_.loop(), delay);
  }
}

sim::Task<Status> RingReceiver::TryRecv(std::vector<std::byte>* out) {
  if (DeliverStashed(out)) {
    co_return OkStatus();
  }
  for (;;) {
    std::array<std::byte, kSlotSize> line;
    auto seq_or = co_await LoadSlot(tail_, &line);
    if (!seq_or.ok()) {
      co_return seq_or.status();
    }
    if (*seq_or != static_cast<uint32_t>(tail_ + 1)) {
      co_return NotFound("ring empty");
    }
    if (!FaultActive()) {
      co_return co_await ConsumeMessage(line, out);
    }
    scratch_.clear();
    CO_RETURN_IF_ERROR(co_await ConsumeMessage(line, &scratch_));
    if (JudgeConsumed(out)) {
      co_return OkStatus();
    }
    // Dropped/delayed: poll the next slot once more so a burst behind a
    // dropped message is still drained by this call.
  }
}

}  // namespace cxlpool::msg
