#include "src/msg/ring.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "src/common/check.h"
#include "src/msg/wire.h"

namespace cxlpool::msg {

namespace {
constexpr uint64_t kSeqOffset = 0;
constexpr uint64_t kChunkLenOffset = 4;
constexpr uint64_t kMsgLenOffset = 6;
constexpr uint64_t kPayloadOffset = kSlotHeaderSize;

bool IsPowerOfTwo(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

RingSender::RingSender(cxl::HostAdapter& host, const RingConfig& config)
    : host_(host),
      config_(config),
      cursor_addr_(config.base + static_cast<uint64_t>(config.slots) * kSlotSize),
      backoff_(config.poll_min, config.poll_max) {
  CXLPOOL_CHECK(IsPowerOfTwo(config.slots));
  CXLPOOL_CHECK(config.base % kCachelineSize == 0);
}

sim::Task<Status> RingSender::WaitForSpace(uint32_t chunks_needed) {
  if (chunks_needed > config_.slots) {
    co_return InvalidArgument("message needs more chunks than the ring has slots");
  }
  Nanos give_up_at =
      config_.full_wait > 0 ? host_.loop().now() + config_.full_wait : 0;
  while (head_ + chunks_needed - cached_tail_ > config_.slots) {
    // Ring looks full: refresh the consumer cursor from the pool.
    CO_RETURN_IF_ERROR(co_await host_.Invalidate(cursor_addr_, 8));
    std::array<std::byte, 8> buf;
    CO_RETURN_IF_ERROR(co_await host_.Load(cursor_addr_, buf));
    cached_tail_ = wire::GetU64(buf.data());
    if (head_ + chunks_needed - cached_tail_ <= config_.slots) {
      backoff_.Reset();
      break;
    }
    if (give_up_at != 0 && host_.loop().now() >= give_up_at) {
      ++full_rejects_;
      co_return Overloaded("ring full past full_wait");
    }
    co_await sim::Delay(host_.loop(), backoff_.NextDelay());
  }
  co_return OkStatus();
}

sim::Task<Status> RingSender::Send(std::span<const std::byte> payload) {
  if (payload.size() > kMaxMessageSize) {
    co_return InvalidArgument("message exceeds kMaxMessageSize");
  }
  uint32_t chunks = std::max<uint32_t>(
      1, static_cast<uint32_t>((payload.size() + kSlotPayload - 1) / kSlotPayload));
  CO_RETURN_IF_ERROR(co_await WaitForSpace(chunks));

  size_t offset = 0;
  for (uint32_t c = 0; c < chunks; ++c) {
    size_t chunk_len = std::min<size_t>(kSlotPayload, payload.size() - offset);
    std::array<std::byte, kSlotSize> line{};
    wire::PutU32(line.data() + kSeqOffset, static_cast<uint32_t>(head_ + 1));
    wire::PutU16(line.data() + kChunkLenOffset, static_cast<uint16_t>(chunk_len));
    wire::PutU16(line.data() + kMsgLenOffset, static_cast<uint16_t>(payload.size()));
    if (chunk_len > 0) {  // empty messages have a null payload pointer
      std::memcpy(line.data() + kPayloadOffset, payload.data() + offset,
                  chunk_len);
    }

    uint64_t slot_addr = config_.base + (head_ % config_.slots) * kSlotSize;
    // The whole line is published with one non-temporal store: payload and
    // the seq flag become visible atomically at cacheline granularity.
    CO_RETURN_IF_ERROR(co_await host_.StoreNt(slot_addr, line));
    ++head_;
    offset += chunk_len;
  }
  co_return OkStatus();
}

RingReceiver::RingReceiver(cxl::HostAdapter& host, const RingConfig& config)
    : host_(host),
      config_(config),
      cursor_addr_(config.base + static_cast<uint64_t>(config.slots) * kSlotSize),
      backoff_(config.poll_min, config.poll_max) {
  CXLPOOL_CHECK(IsPowerOfTwo(config.slots));
}

sim::Task<Result<uint32_t>> RingReceiver::LoadSlot(
    uint64_t index, std::array<std::byte, kSlotSize>* line) {
  uint64_t slot_addr = config_.base + (index % config_.slots) * kSlotSize;
  // Software coherence: drop any cached copy before loading, or we would
  // spin on a stale line forever.
  Status st = co_await host_.Invalidate(slot_addr, kSlotSize);
  if (!st.ok()) {
    co_return st;
  }
  st = co_await host_.Load(slot_addr, *line);
  if (!st.ok()) {
    co_return st;
  }
  co_return wire::GetU32(line->data() + kSeqOffset);
}

sim::Task<Status> RingReceiver::PublishCursor() {
  std::array<std::byte, 8> buf;
  wire::PutU64(buf.data(), tail_);
  CO_RETURN_IF_ERROR(co_await host_.StoreNt(cursor_addr_, buf));
  last_published_cursor_ = tail_;
  co_return OkStatus();
}

sim::Task<Status> RingReceiver::ConsumeMessage(
    std::array<std::byte, kSlotSize> first_line, std::vector<std::byte>* out) {
  uint16_t msg_len = wire::GetU16(first_line.data() + kMsgLenOffset);
  uint16_t chunk_len = wire::GetU16(first_line.data() + kChunkLenOffset);
  out->insert(out->end(), first_line.data() + kPayloadOffset,
              first_line.data() + kPayloadOffset + chunk_len);
  ++tail_;
  size_t received = chunk_len;

  while (received < msg_len) {
    // Continuation chunks: the sender is already committed to writing
    // them, so spin at the minimum cadence without a deadline.
    std::array<std::byte, kSlotSize> line;
    auto seq_or = co_await LoadSlot(tail_, &line);
    if (!seq_or.ok()) {
      co_return seq_or.status();
    }
    if (*seq_or != static_cast<uint32_t>(tail_ + 1)) {
      co_await sim::Delay(host_.loop(), config_.poll_min);
      continue;
    }
    chunk_len = wire::GetU16(line.data() + kChunkLenOffset);
    out->insert(out->end(), line.data() + kPayloadOffset,
                line.data() + kPayloadOffset + chunk_len);
    received += chunk_len;
    ++tail_;
  }

  ++messages_;
  if (tail_ - last_published_cursor_ >= config_.slots / 4) {
    CO_RETURN_IF_ERROR(co_await PublishCursor());
  }
  co_return OkStatus();
}

sim::Task<Status> RingReceiver::Recv(std::vector<std::byte>* out, Nanos deadline) {
  for (;;) {
    std::array<std::byte, kSlotSize> line;
    auto seq_or = co_await LoadSlot(tail_, &line);
    if (!seq_or.ok()) {
      co_return seq_or.status();
    }
    if (*seq_or == static_cast<uint32_t>(tail_ + 1)) {
      backoff_.Reset();
      co_return co_await ConsumeMessage(line, out);
    }
    // Idle: lazily publish the consumer cursor. Without this a sender
    // needing many contiguous slots can wait forever for credits the
    // batched publish in ConsumeMessage would never flush (deadlock).
    if (tail_ != last_published_cursor_) {
      CO_RETURN_IF_ERROR(co_await PublishCursor());
    }
    Nanos now = host_.loop().now();
    if (now >= deadline) {
      co_return DeadlineExceeded("no message before deadline");
    }
    Nanos delay = std::min(backoff_.NextDelay(), deadline - now);
    co_await sim::Delay(host_.loop(), delay);
  }
}

sim::Task<Status> RingReceiver::TryRecv(std::vector<std::byte>* out) {
  std::array<std::byte, kSlotSize> line;
  auto seq_or = co_await LoadSlot(tail_, &line);
  if (!seq_or.ok()) {
    co_return seq_or.status();
  }
  if (*seq_or != static_cast<uint32_t>(tail_ + 1)) {
    co_return NotFound("ring empty");
  }
  co_return co_await ConsumeMessage(line, out);
}

}  // namespace cxlpool::msg
