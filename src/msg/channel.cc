#include "src/msg/channel.h"

namespace cxlpool::msg {

Result<std::unique_ptr<Channel>> Channel::Create(cxl::CxlPool& pool,
                                                 cxl::HostAdapter& a,
                                                 cxl::HostAdapter& b,
                                                 Options options) {
  uint64_t per_ring = RingFootprint(options.slots);
  ASSIGN_OR_RETURN(cxl::PoolSegment seg, pool.Allocate(2 * per_ring, options.mhd));

  RingConfig a_to_b;
  a_to_b.base = seg.base;
  a_to_b.slots = options.slots;
  a_to_b.poll_min = options.poll_min;
  a_to_b.poll_max = options.poll_max;
  a_to_b.full_wait = options.full_wait;
  a_to_b.recv_window = options.recv_window;
  // Wire the pod's message-fabric fault plane (if any) into both
  // directions so every channel — report, control, forwarding, peer
  // probe — is partitionable by directed (sender → receiver) host pair.
  a_to_b.fault_plane = a.fault_plane();
  a_to_b.src_host = a.id();
  a_to_b.dst_host = b.id();

  RingConfig b_to_a = a_to_b;
  b_to_a.base = seg.base + per_ring;
  b_to_a.src_host = b.id();
  b_to_a.dst_host = a.id();

  auto channel = std::unique_ptr<Channel>(new Channel());
  channel->segment_ = seg;
  channel->end_a_ = std::make_unique<Endpoint>(a, a_to_b, b_to_a, options.submit);
  channel->end_b_ = std::make_unique<Endpoint>(b, b_to_a, a_to_b, options.submit);
  return channel;
}

}  // namespace cxlpool::msg
