// MPSC submission front for a RingSender: many producer coroutines feed
// one SPSC ring without convoying behind each other's CXL stores.
//
// The ring itself must stay single-producer (slot seqs are claimed from a
// shared head across suspension points), so production is funneled through
// a staging queue with a single drainer — the sim-term equivalent of a
// lock-free MPSC submission ring with one consumer-side combiner:
//
//   * Submit() stages a ticket (claiming a staging slot is the single-
//     atomic-claim step) and the first stager becomes the DRAINER.
//   * The drainer folds up to `watermark` staged frames into one
//     RingSender::SendBatch — one space reservation, write-combined
//     nt-stores — then completes those tickets.
//   * When the drainer's own frame has been sent it hands the drainer
//     role to the owner of the oldest still-staged ticket instead of
//     finishing everyone's work itself (no head-of-line producer pays for
//     the whole convoy).
//
// Batching is opportunistic by default: a lone producer drains itself
// immediately (batch of one, zero added latency); concurrent producers
// stage while the drainer's SendBatch is in flight and get folded into
// the next batch. `max_delay` adds a Nagle-style bounded wait for the
// batch to fill — the hard latency bound is max_delay itself, so the knob
// trades exactly that much p50 for fewer, larger CXL bursts.
//
// Control-priority frames jump ahead of staged data frames (never ahead
// of earlier control) and are exempt from the staging bound, mirroring
// the RPC turn queue's guarantees end to end.
#ifndef SRC_MSG_SUBMIT_H_
#define SRC_MSG_SUBMIT_H_

#include <deque>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/msg/backpressure.h"
#include "src/msg/ring.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace cxlpool::msg {

class MpscSubmitter {
 public:
  struct Options {
    // Max frames folded into one SendBatch; also the fill target the
    // Nagle delay waits for. Clamped to >= 1.
    uint32_t watermark = 8;
    // Bounded wait for the batch to fill before flushing anyway. 0 =
    // flush immediately (batching still happens opportunistically while
    // a previous batch's stores are in flight). This is the hard latency
    // bound: no staged frame ever waits longer than max_delay before its
    // batch is pushed to the ring.
    Nanos max_delay = 0;
    // Bound on staged data-priority frames; 0 = unbounded. Overflow is
    // refused with kOverloaded (control is exempt, like the RPC queue).
    uint32_t max_staged = 0;
  };

  MpscSubmitter(RingSender& sender, Options options)
      : sender_(sender), options_(options) {
    if (options_.watermark == 0) {
      options_.watermark = 1;
    }
  }
  explicit MpscSubmitter(RingSender& sender)
      : MpscSubmitter(sender, Options()) {}

  // Publishes one frame. The payload must stay alive until Submit
  // returns (callers await it, so their frame owns the bytes — no copy).
  // Returns the ring send status; kOverloaded when the staging bound or
  // the ring's full_wait rejects the frame.
  sim::Task<Status> Submit(std::span<const std::byte> payload,
                           uint8_t priority = kPriorityData);

  struct Stats {
    uint64_t submitted = 0;
    uint64_t batches = 0;          // drain rounds pushed to the ring
    uint64_t batched_frames = 0;   // frames across those rounds
    uint64_t max_batch = 0;        // largest single drain round
    uint64_t handoffs = 0;         // drainer role passed to a follower
    uint64_t rejected = 0;         // staging-bound refusals
    uint64_t nagle_waits = 0;      // bounded fills awaited
  };
  const Stats& stats() const { return stats_; }
  size_t staged() const { return staged_.size(); }
  RingSender& sender() { return sender_; }

 private:
  struct Ticket {
    explicit Ticket(sim::EventLoop& loop) : wake(loop) {}
    std::span<const std::byte> payload;
    uint8_t priority = kPriorityData;
    sim::Event wake;       // completion OR drainer-role handoff
    Status result;
    bool finished = false; // result is final
    bool drainer = false;  // woken to take over draining
  };

  sim::Task<> Drain(Ticket* self, bool fresh);
  size_t StagedData() const;

  RingSender& sender_;
  Options options_;
  std::deque<Ticket*> staged_;
  bool draining_ = false;
  // Set while a fresh drainer sits in its Nagle fill wait; staging the
  // watermark-th frame fires it to flush early.
  sim::Event* fill_wake_ = nullptr;
  Stats stats_;
};

}  // namespace cxlpool::msg

#endif  // SRC_MSG_SUBMIT_H_
