// Tiny fixed-endian (little-endian) wire encoding helpers for message
// payloads placed in shared memory.
#ifndef SRC_MSG_WIRE_H_
#define SRC_MSG_WIRE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "src/common/check.h"

namespace cxlpool::msg::wire {

inline void PutU16(std::byte* p, uint16_t v) { std::memcpy(p, &v, 2); }
inline void PutU32(std::byte* p, uint32_t v) { std::memcpy(p, &v, 4); }
inline void PutU64(std::byte* p, uint64_t v) { std::memcpy(p, &v, 8); }

inline uint16_t GetU16(const std::byte* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
inline uint32_t GetU32(const std::byte* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
inline uint64_t GetU64(const std::byte* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// Append-style writer over a byte vector.
class Writer {
 public:
  explicit Writer(std::vector<std::byte>* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(std::byte{v}); }
  void U16(uint16_t v) { Raw(&v, 2); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void Bytes(std::span<const std::byte> b) { Raw(b.data(), b.size()); }

 private:
  void Raw(const void* p, size_t n) {
    const std::byte* b = static_cast<const std::byte*>(p);
    out_->insert(out_->end(), b, b + n);
  }
  std::vector<std::byte>* out_;
};

// Sequential reader; CHECK-fails on underflow (malformed internal
// messages are programmer errors, not runtime conditions).
class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  uint8_t U8() { return static_cast<uint8_t>(Take(1)[0]); }
  uint16_t U16() { return GetU16(Take(2).data()); }
  uint32_t U32() { return GetU32(Take(4).data()); }
  uint64_t U64() { return GetU64(Take(8).data()); }
  std::span<const std::byte> Bytes(size_t n) { return Take(n); }
  std::span<const std::byte> Rest() { return Take(data_.size() - pos_); }

  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const std::byte> Take(size_t n) {
    CXLPOOL_CHECK(pos_ + n <= data_.size());
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  std::span<const std::byte> data_;
  size_t pos_ = 0;
};

}  // namespace cxlpool::msg::wire

#endif  // SRC_MSG_WIRE_H_
