// Overload protection primitives for the pooled-I/O data plane.
//
// The forwarded-MMIO channel is a shared-memory queue: there is no TCP to
// push back for it, so under overload an unprotected path degenerates into
// unbounded queueing, timeout storms, and retry amplification. This header
// collects the pieces every hop composes:
//
//   * Priority classes — control-plane probes/leases vs data-plane
//     doorbells, carried on the RPC wire so a watchdog probe never starves
//     behind a data storm (a wedged-detection false positive under pure
//     overload is the failure mode these kill).
//   * OverflowPolicy — what a bounded queue does when full: reject the
//     arriving request (kOverloaded, caller backs off) or drop the oldest
//     queued one (freshest-first under deadline pressure).
//   * AdmissionController — CoDel-style load shedder at the home agent:
//     sheds data-plane requests when queueing delay stays above target for
//     a full interval, never sheds control plane, and bounds concurrent
//     serves per agent.
//   * CircuitBreaker — per-device closed/open/half-open breaker that
//     fast-fails calls into a failing device and feeds the orchestrator's
//     existing quarantine machinery through an on-open callback.
//
// All state is plain arithmetic on the one simulated clock — deterministic,
// so chaos soaks over these policies replay bit-for-bit.
#ifndef SRC_MSG_BACKPRESSURE_H_
#define SRC_MSG_BACKPRESSURE_H_

#include <cstdint>
#include <functional>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/obs/registry.h"
#include "src/sim/stats.h"

namespace cxlpool::msg {

// Two-level priority carried in the RPC request header. Control plane
// (watchdog probes, reports, leases, epoch pushes, migrations) is never
// shed and jumps client-side send queues; data plane (forwarded doorbells)
// is what backpressure acts on.
inline constexpr uint8_t kPriorityControl = 0;
inline constexpr uint8_t kPriorityData = 1;

// What a bounded queue does with an arrival that would exceed its depth.
enum class OverflowPolicy : uint8_t {
  // Refuse the arriving request with kOverloaded. The caller learns
  // immediately and can back off; queued work is untouched.
  kRejectNew = 0,
  // Evict the oldest *queued* (not in-flight) data-plane request with
  // kOverloaded and admit the arrival. Under deadline pressure the oldest
  // entry is the one most likely already dead — freshest-first wins.
  kDropOldest = 1,
};

// CoDel-style admission control for a home agent's serve loops. The signal
// is per-request sojourn time (send to dequeue — both ends share the sim
// clock, so it is exact, no clock exchange needed). Sustained sojourn above
// `target` for a full `interval` enters the dropping state; drops then
// repeat on the classic interval/sqrt(count) cadence until the queue drains
// below target. Control-plane requests are observed (histograms) but never
// shed and never advance the CoDel state.
class AdmissionController {
 public:
  struct Options {
    // Queueing-delay target; sojourn persistently above this sheds.
    Nanos target = 5 * kMicrosecond;
    // How long sojourn must stay above target before the first shed.
    Nanos interval = 100 * kMicrosecond;
    // Bound on concurrently served requests across every serve loop bound
    // to this controller (per home agent). 0 = unlimited.
    uint32_t max_inflight = 0;
  };

  AdmissionController() : AdmissionController(Options()) {}
  explicit AdmissionController(Options options);

  // Routes the per-priority sojourn histograms and the inflight gauge into
  // a shared registry (rpc.queue_delay_ns{priority=...}, agent.inflight).
  void BindMetrics(obs::Registry* registry, const obs::Labels& labels);

  // Records `sojourn` and decides whether to shed. Only data-priority
  // requests are ever shed (and only they drive the CoDel state).
  bool ShouldShed(Nanos sojourn, uint8_t priority, Nanos now);

  // Inflight bound; false means reject with kOverloaded. Balance every
  // successful TryEnterServe with ExitServe.
  bool TryEnterServe();
  void ExitServe();

  struct Stats {
    uint64_t observed = 0;          // requests seen (all priorities)
    uint64_t shed = 0;              // CoDel drops
    uint64_t inflight_rejects = 0;  // max_inflight refusals
  };
  const Stats& stats() const { return stats_; }
  uint32_t inflight() const { return inflight_; }
  const Options& options() const { return options_; }
  const sim::Histogram& sojourn_hist(uint8_t priority) const {
    return priority == kPriorityControl ? *control_hist_ : *data_hist_;
  }

 private:
  Options options_;
  Stats stats_;
  uint32_t inflight_ = 0;
  // CoDel state (data priority only).
  Nanos first_above_ = 0;  // 0 = sojourn currently below target
  bool dropping_ = false;
  Nanos drop_next_ = 0;
  uint32_t drop_count_ = 0;
  // Default to internal histograms; BindMetrics repoints at registry-owned
  // series so bench snapshots see them without extra plumbing.
  sim::Histogram internal_control_, internal_data_;
  sim::Histogram* control_hist_ = &internal_control_;
  sim::Histogram* data_hist_ = &internal_data_;
  obs::Gauge* inflight_gauge_ = nullptr;
};

// Per-device circuit breaker. Consecutive transport-level failures
// (kDeadlineExceeded / kUnavailable — a peer that answers kOverloaded is
// alive and must NOT trip the breaker) open it; while open every call
// fast-fails without touching the wire. After `open_duration` the breaker
// half-opens and lets probes through: enough successes close it, any
// failure re-opens. The on-open callback is how it feeds the
// orchestrator's quarantine/probation machinery instead of duplicating it.
class CircuitBreaker {
 public:
  enum class State : uint8_t { kClosed = 0, kHalfOpen = 1, kOpen = 2 };

  struct Options {
    // Consecutive recordable failures that trip the breaker. 0 disables.
    uint32_t failure_threshold = 5;
    Nanos open_duration = 200 * kMicrosecond;
    // Consecutive half-open successes required to close.
    uint32_t half_open_successes = 2;
  };

  CircuitBreaker() : CircuitBreaker(Options()) {}
  explicit CircuitBreaker(Options options) : options_(options) {}

  // Invoked (synchronously) each time the breaker transitions to kOpen.
  void OnOpen(std::function<void()> callback) { on_open_ = std::move(callback); }

  // False = fail fast (open and not yet probe time). Lazily half-opens
  // once open_duration has elapsed.
  bool Allow(Nanos now);
  void RecordSuccess(Nanos now);
  void RecordFailure(Nanos now);
  // True for the failure codes that should count against the breaker.
  static bool IsBreakerFailure(const Status& status) {
    return status.code() == StatusCode::kDeadlineExceeded ||
           status.code() == StatusCode::kUnavailable;
  }

  State state(Nanos now);
  bool enabled() const { return options_.failure_threshold > 0; }

  struct Stats {
    uint64_t opens = 0;
    uint64_t fast_fails = 0;  // calls refused while open
    uint64_t probes = 0;      // half-open attempts allowed through
  };
  const Stats& stats() const { return stats_; }

 private:
  void Trip(Nanos now);

  Options options_;
  State state_ = State::kClosed;
  uint32_t consecutive_failures_ = 0;
  uint32_t half_open_streak_ = 0;
  Nanos opened_at_ = 0;
  std::function<void()> on_open_;
  Stats stats_;
};

}  // namespace cxlpool::msg

#endif  // SRC_MSG_BACKPRESSURE_H_
