#include "src/msg/retry.h"

#include <algorithm>

namespace cxlpool::msg {

Nanos RetryPolicy::BackoffFor(int retry) {
  double base = static_cast<double>(options_.initial_backoff);
  for (int i = 1; i < retry; ++i) {
    base *= options_.multiplier;
  }
  base = std::min(base, static_cast<double>(options_.max_backoff));
  double factor = rng_.Uniform(1.0 - options_.jitter, 1.0 + options_.jitter);
  return std::max<Nanos>(1, static_cast<Nanos>(base * factor));
}

bool RetryPolicy::SpendRetryToken() {
  if (options_.budget_ratio <= 0.0) {
    return true;  // budget disabled
  }
  if (budget_tokens_ < 1.0) {
    ++stats_.budget_denied;
    return false;
  }
  budget_tokens_ -= 1.0;
  return true;
}

sim::Task<Result<std::vector<std::byte>>> RetryPolicy::Call(
    RpcClient& client, uint16_t method, std::span<const std::byte> request,
    Nanos attempt_timeout, sim::EventLoop& loop, obs::TraceContext ctx,
    Nanos op_deadline, uint8_t priority) {
  ++stats_.calls;
  // Every fresh call earns budget_ratio retry tokens: sustained retries are
  // bounded to that fraction of fresh load plus the burst.
  budget_tokens_ =
      std::min(options_.budget_burst, budget_tokens_ + options_.budget_ratio);
  Result<std::vector<std::byte>> result = InvalidArgument("no attempts made");
  Nanos timeout = attempt_timeout;
  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    if (attempt > 1) {
      ++stats_.retries;
      co_await sim::Delay(loop, BackoffFor(attempt - 1));
      if (options_.timeout_multiplier > 1.0) {
        timeout = std::max<Nanos>(
            1, static_cast<Nanos>(static_cast<double>(timeout) *
                                  options_.timeout_multiplier));
      }
    }
    if (op_deadline > 0 && loop.now() >= op_deadline) {
      // The operation's budget is gone; another attempt is dead on
      // arrival at every hop that checks the propagated deadline. Keep the
      // last attempt's failure (it explains what ate the budget).
      if (attempt == 1) {
        result = DeadlineExceeded("op deadline expired before first attempt");
      }
      break;
    }
    Nanos attempt_deadline = loop.now() + timeout;
    if (op_deadline > 0) {
      attempt_deadline = std::min(attempt_deadline, op_deadline);
    }
    // The wire carries op_deadline, never attempt_deadline: a timed-out
    // attempt's frame still applies at the home agent (the retry dedups),
    // so only the op's real budget may cause downstream shedding.
    result = co_await client.Call(method, request, attempt_deadline, ctx,
                                  priority, op_deadline);
    if (result.ok() || !IsRetryable(result.status())) {
      co_return result;
    }
    if (attempt < options_.max_attempts && !SpendRetryToken()) {
      co_return result;  // budget empty: surface the last failure as-is
    }
  }
  ++stats_.exhausted;
  co_return result;
}

}  // namespace cxlpool::msg
