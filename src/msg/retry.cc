#include "src/msg/retry.h"

#include <algorithm>

namespace cxlpool::msg {

Nanos RetryPolicy::BackoffFor(int retry) {
  double base = static_cast<double>(options_.initial_backoff);
  for (int i = 1; i < retry; ++i) {
    base *= options_.multiplier;
  }
  base = std::min(base, static_cast<double>(options_.max_backoff));
  double factor = rng_.Uniform(1.0 - options_.jitter, 1.0 + options_.jitter);
  return std::max<Nanos>(1, static_cast<Nanos>(base * factor));
}

sim::Task<Result<std::vector<std::byte>>> RetryPolicy::Call(
    RpcClient& client, uint16_t method, std::span<const std::byte> request,
    Nanos attempt_timeout, sim::EventLoop& loop, obs::TraceContext ctx) {
  ++stats_.calls;
  Result<std::vector<std::byte>> result = InvalidArgument("no attempts made");
  Nanos timeout = attempt_timeout;
  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    if (attempt > 1) {
      ++stats_.retries;
      co_await sim::Delay(loop, BackoffFor(attempt - 1));
      if (options_.timeout_multiplier > 1.0) {
        timeout = std::max<Nanos>(
            1, static_cast<Nanos>(static_cast<double>(timeout) *
                                  options_.timeout_multiplier));
      }
    }
    result = co_await client.Call(method, request, loop.now() + timeout, ctx);
    if (result.ok() || !IsRetryable(result.status())) {
      co_return result;
    }
  }
  ++stats_.exhausted;
  co_return result;
}

}  // namespace cxlpool::msg
