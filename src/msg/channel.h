// Bidirectional host-to-host channel: a pair of SPSC rings in shared CXL
// pool memory. This is the paper's sub-microsecond communication mechanism
// used to forward device-memory operations (MMIO, doorbells) from remote
// hosts to the host a PCIe device is physically attached to.
#ifndef SRC_MSG_CHANNEL_H_
#define SRC_MSG_CHANNEL_H_

#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/cxl/host_adapter.h"
#include "src/cxl/pool.h"
#include "src/msg/ring.h"
#include "src/msg/submit.h"

namespace cxlpool::msg {

// One side of a channel: sends on one ring, receives on the other.
//
// Sends are routed through an MPSC submission front: any number of
// producer coroutines may call Send concurrently (the underlying SPSC
// ring is fed by a single drainer that write-combines staged frames into
// batched nt-stores). A lone producer drains itself immediately, so the
// single-producer cost is unchanged. Code outside src/msg must use this
// path, never RingSender::Send directly (enforced by lint_tasks.py's
// direct-ring-send rule) — concurrent direct sends corrupt the shared
// head across suspension points.
class Endpoint {
 public:
  Endpoint(cxl::HostAdapter& host, const RingConfig& tx, const RingConfig& rx,
           MpscSubmitter::Options submit = {})
      : sender_(host, tx), receiver_(host, rx), submitter_(sender_, submit) {}

  // `priority` orders the frame within the submission front only (control
  // jumps staged data frames and ignores the staging bound); it does not
  // reach the wire — RPC priority rides in the frame header.
  sim::Task<Status> Send(std::span<const std::byte> payload,
                         uint8_t priority = kPriorityData) {
    return submitter_.Submit(payload, priority);
  }
  sim::Task<Status> Recv(std::vector<std::byte>* out, Nanos deadline) {
    return receiver_.Recv(out, deadline);
  }
  sim::Task<Status> TryRecv(std::vector<std::byte>* out) {
    return receiver_.TryRecv(out);
  }

  RingSender& sender() { return sender_; }
  RingReceiver& receiver() { return receiver_; }
  MpscSubmitter& submitter() { return submitter_; }
  cxl::HostAdapter& host() { return sender_.host(); }
  sim::EventLoop& loop() { return sender_.host().loop(); }

 private:
  RingSender sender_;
  RingReceiver receiver_;
  MpscSubmitter submitter_;
};

// A channel between two hosts of the same pod, backed by one pool segment.
class Channel {
 public:
  struct Options {
    uint32_t slots = 64;
    Nanos poll_min = 100;
    Nanos poll_max = 2 * kMicrosecond;
    // Bounded-send policy for both rings: how long a Send may wait on a
    // full ring before failing with kOverloaded. 0 = wait forever.
    Nanos full_wait = 0;
    // Receiver burst window (slots per fresh invalidate+load round).
    uint32_t recv_window = 8;
    // Submission-front batching for both endpoints (watermark, Nagle
    // max_delay, staging bound). Defaults: opportunistic batching only.
    MpscSubmitter::Options submit;
    // Pin the backing segment to a specific MHD (tests); default balances.
    MhdId mhd;
  };

  // Allocates pool memory and builds both endpoints.
  static Result<std::unique_ptr<Channel>> Create(cxl::CxlPool& pool,
                                                 cxl::HostAdapter& a,
                                                 cxl::HostAdapter& b,
                                                 Options options);
  static Result<std::unique_ptr<Channel>> Create(cxl::CxlPool& pool,
                                                 cxl::HostAdapter& a,
                                                 cxl::HostAdapter& b) {
    return Create(pool, a, b, Options{});
  }

  Endpoint& end_a() { return *end_a_; }
  Endpoint& end_b() { return *end_b_; }
  const cxl::PoolSegment& segment() const { return segment_; }

 private:
  Channel() = default;

  cxl::PoolSegment segment_;
  std::unique_ptr<Endpoint> end_a_;
  std::unique_ptr<Endpoint> end_b_;
};

}  // namespace cxlpool::msg

#endif  // SRC_MSG_CHANNEL_H_
