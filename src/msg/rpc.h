// Minimal RPC over a Channel. Used by the pooling orchestrator/agents and
// by the MMIO forwarding datapath (core/). One client per endpoint; up to
// Options::max_inflight calls may be on the wire concurrently, with
// responses matched back to their caller by call_id (the wire has carried
// call_id since v1 exactly so the client never has to assume FIFO
// completion). max_inflight = 1 (the default) degenerates to the classic
// stop-and-wait client.
//
// Wire format (version 2):
//   request:  [u8 version][u8 kind][u64 call_id][u16 method][u8 priority]
//             [u64 deadline][u64 trace_id][u64 parent_span][u64 sent_at]
//             [payload...]
//   response: [u8 version][u8 kind][u64 call_id][u16 method-or-code]
//             [payload...]
//
// Every header field is ALWAYS present — zero/default when unused. This is
// load-bearing for determinism: frame size feeds the ring slot count and
// therefore simulated timing, so tracing on/off, deadlines, and priorities
// must not change the bytes-on-wire length (only field values, which the
// timing model never reads). `sent_at` lets the receiver materialize the
// channel-flight span retroactively AND measure exact queueing delay for
// admission control — both hosts share the one sim clock. `deadline`
// (absolute, 0 = none) propagates the originating op's budget so every hop
// can shed already-dead work; `priority` separates control-plane probes
// and leases from data-plane doorbells so the former never starve.
//
// A frame whose version byte differs is rejected with a typed error
// (request side: counted + dropped, we cannot parse a call_id to reply to;
// response side: kInvalidArgument to the caller), never misparsed.
#ifndef SRC_MSG_RPC_H_
#define SRC_MSG_RPC_H_

#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "src/common/status.h"
#include "src/msg/backpressure.h"
#include "src/msg/channel.h"
#include "src/obs/trace.h"
#include "src/sim/poll.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace cxlpool::msg {

inline constexpr uint8_t kRpcWireVersion = 2;
inline constexpr uint8_t kRpcRequest = 0;
inline constexpr uint8_t kRpcResponse = 1;
inline constexpr uint8_t kRpcErrorResponse = 2;

// Sentinel for RpcClient::Call's op_deadline: stamp the call's own wait
// deadline into the wire (single-attempt callers, where attempt == op).
inline constexpr Nanos kInheritCallDeadline = -1;

class RpcClient {
 public:
  struct Options {
    // Bound on calls queued behind the in-flight window (per client —
    // i.e. per (client host, device) forwarding path). 0 = unbounded
    // (legacy). Control-priority calls are exempt: they jump the queue
    // and are never counted against or evicted by the bound.
    uint32_t max_pending = 0;
    OverflowPolicy overflow = OverflowPolicy::kRejectNew;
    // Calls allowed on the wire at once. 1 (default) = stop-and-wait:
    // exactly the pre-pipelining client, every existing ordering holds.
    // Larger values pipeline: the channel holds several requests while
    // earlier responses are still in flight, hiding the round-trip under
    // the server's service time. Control priority jumps the wait queue
    // but still occupies an inflight slot — a control probe admitted
    // past the data backlog is still one wire-visible call.
    uint32_t max_inflight = 1;
  };

  explicit RpcClient(Endpoint& endpoint) : RpcClient(endpoint, Options()) {}
  RpcClient(Endpoint& endpoint, Options options)
      : endpoint_(endpoint), options_(options) {}

  // Enables client-side spans (rpc.enqueue) and on-wire propagation of
  // `ctx`. Null (the default) keeps every hook one branch.
  void BindTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  // Issues a call and waits for the response (until `deadline`, absolute).
  // Calls from concurrent coroutines share the channel: up to
  // max_inflight requests ride the wire at once and responses are
  // demultiplexed by call_id (leader/follower — the oldest waiting call
  // pumps the receive ring for everyone, so there is no detached reader
  // task to supervise). Control-priority calls jump ahead of queued
  // data-priority calls so probes and leases never wait out a data
  // storm. `ctx` is the caller's trace context; it rides the request
  // header so the server's spans attach to the same trace.
  //
  // `op_deadline` is what gets STAMPED INTO THE WIRE for downstream hops
  // to shed against: the originating operation's total budget, not this
  // attempt's wait bound. kInheritCallDeadline (default) stamps `deadline`
  // — right for single-attempt callers, where the two coincide. Retried
  // callers (RetryPolicy) pass their op budget explicitly: a timed-out
  // ATTEMPT's work is not dead — the home agent still applies it and the
  // retry dedups — so the attempt deadline must never reach the wire.
  sim::Task<Result<std::vector<std::byte>>> Call(uint16_t method,
                                                 std::span<const std::byte> request,
                                                 Nanos deadline,
                                                 obs::TraceContext ctx = {},
                                                 uint8_t priority = kPriorityData,
                                                 Nanos op_deadline = kInheritCallDeadline);

  struct Stats {
    uint64_t rejected = 0;           // kRejectNew refusals at the bound
    uint64_t dropped_oldest = 0;     // queued calls evicted by kDropOldest
    uint64_t expired_in_queue = 0;   // deadline passed while waiting to send
    uint64_t expired_in_flight = 0;  // timed out awaiting a response
    uint64_t stale_responses = 0;    // responses matching no pending call
  };
  const Stats& stats() const { return stats_; }
  // Calls currently waiting behind the in-flight window.
  size_t pending() const { return turn_queue_.size(); }
  // Calls currently holding an inflight slot (sending or awaiting reply).
  size_t inflight() const { return inflight_; }

 private:
  struct TurnWaiter {
    explicit TurnWaiter(sim::EventLoop& loop) : event(loop) {}
    sim::Event event;
    uint8_t priority = kPriorityData;
    bool dropped = false;
  };

  // A call that has been sent and is awaiting its response. Keyed by
  // call_id in pending_calls_; call_ids are monotone, so map order is
  // issue order and begin() is the oldest in-flight call.
  struct PendingCall {
    explicit PendingCall(sim::EventLoop& loop) : event(loop) {}
    sim::Event event;
    Nanos deadline = 0;  // this call's response-wait bound (0 = none)
    Status status;
    std::vector<std::byte> payload;
    bool done = false;
  };

  // Inflight-window admission with priority: returns kOverloaded without
  // a slot when the pending bound rejects or evicts this call; otherwise
  // returns OK holding one inflight slot (release with ReleaseTurn).
  sim::Task<Status> AcquireTurn(uint8_t priority);
  void ReleaseTurn();
  size_t DataWaiters() const;

  // One receive round: waits for a frame (bounded by the earliest pending
  // deadline) and completes the matching call — or sweeps expired /
  // fails all on channel death. Exactly one call runs this at a time
  // (reader_active_).
  sim::Task<> PumpResponses();
  void Complete(PendingCall* call, Status status);
  void FailOldest(Status status);
  void WakeNextReader();

  Endpoint& endpoint_;
  Options options_;
  uint64_t next_call_id_ = 1;
  uint32_t inflight_ = 0;
  std::deque<TurnWaiter*> turn_queue_;
  std::map<uint64_t, PendingCall*> pending_calls_;
  bool reader_active_ = false;
  Stats stats_;
  obs::Tracer* tracer_ = nullptr;
};

// Everything a handler may want to know about the request beyond its
// payload: the caller's trace context (zero when untraced), the absolute
// deadline it propagated (0 = none), and its priority class. Handlers that
// do slow work re-check `deadline` right before the expensive step (e.g.
// the home agent before touching a device BAR).
struct ServerContext {
  obs::TraceContext trace;
  Nanos deadline = 0;
  uint8_t priority = kPriorityData;
};

class RpcServer {
 public:
  // Handler returns the response payload or an error status (reported to
  // the caller as kRpcErrorResponse carrying the code).
  using Handler = std::function<sim::Task<Result<std::vector<std::byte>>>(
      uint16_t method, std::span<const std::byte> request)>;
  // Context-aware handler: additionally receives the request's trace
  // context, propagated deadline, and priority.
  using ContextHandler = std::function<sim::Task<Result<std::vector<std::byte>>>(
      uint16_t method, std::span<const std::byte> request,
      const ServerContext& ctx)>;

  RpcServer(Endpoint& endpoint, Handler handler)
      : endpoint_(endpoint),
        handler_([h = std::move(handler)](uint16_t method,
                                          std::span<const std::byte> request,
                                          const ServerContext&) {
          return h(method, request);
        }) {}
  RpcServer(Endpoint& endpoint, ContextHandler handler)
      : endpoint_(endpoint), handler_(std::move(handler)) {}

  // Enables server-side spans: rpc.flight (recorded retroactively from the
  // request's sent_at), rpc.serve around the handler, rpc.reply around the
  // response send, plus rpc.shed / rpc.expired when admission control or
  // deadline checks refuse a request.
  void BindTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  // Shares a per-home-agent admission controller across this server's
  // serve loop: expired requests are refused with kDeadlineExceeded and
  // CoDel-shed / inflight-rejected ones with kOverloaded, all BEFORE the
  // handler (and therefore before any device BAR access). Null (default)
  // disables shedding; expired requests are still refused.
  void BindAdmission(AdmissionController* admission) { admission_ = admission; }

  // Serve loop; runs until `stop` fires. Spawn as a detached task. Exits
  // (and counts a serve_abort) when the channel path dies — e.g. the
  // backing MHD failed or this host crashed. Use ServeSupervised when the
  // server must come back after transient faults.
  sim::Task<> Serve(sim::StopToken& stop);

  // Restart supervisor: re-enters Serve after every abort, backing off
  // exponentially (deterministic, no jitter: one restart probe per backoff
  // is harmless) while the channel stays dead, until `stop` fires.
  sim::Task<> ServeSupervised(sim::StopToken& stop,
                              Nanos initial_backoff = 10 * kMicrosecond,
                              Nanos max_backoff = 200 * kMicrosecond);

  struct Stats {
    uint64_t calls_served = 0;
    uint64_t serve_aborts = 0;  // Serve exited on channel death
    uint64_t restarts = 0;      // ServeSupervised re-entered Serve
    uint64_t expired = 0;       // refused: deadline already passed on dequeue
    uint64_t shed = 0;          // refused: CoDel shed or inflight bound
    uint64_t bad_version = 0;   // dropped: wire version mismatch
  };
  const Stats& stats() const { return stats_; }
  uint64_t calls_served() const { return stats_.calls_served; }

 private:
  Endpoint& endpoint_;
  ContextHandler handler_;
  Stats stats_;
  obs::Tracer* tracer_ = nullptr;
  AdmissionController* admission_ = nullptr;
};

}  // namespace cxlpool::msg

#endif  // SRC_MSG_RPC_H_
