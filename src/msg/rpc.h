// Minimal RPC over a Channel. Used by the pooling orchestrator/agents and
// by the MMIO forwarding datapath (core/). One client per endpoint; calls
// are serialized (the control plane is low-rate by design — the hot
// datapath uses rings directly).
//
// Wire format:
//   request:  [u8 kind][u64 call_id][u16 method]
//             [u64 trace_id][u64 parent_span][u64 sent_at][payload...]
//   response: [u8 kind][u64 call_id][u16 method-or-code][payload...]
//
// The three trace fields are ALWAYS present in requests — zero when the
// call is untraced. This is load-bearing for determinism: frame size feeds
// the ring slot count and therefore simulated timing, so tracing on/off
// must not change the bytes-on-wire length (only the field values, which
// the timing model never reads). `sent_at` lets the receiver materialize
// the channel-flight span retroactively without any clock exchange — both
// hosts share the one sim clock.
#ifndef SRC_MSG_RPC_H_
#define SRC_MSG_RPC_H_

#include <functional>
#include <vector>

#include "src/common/status.h"
#include "src/msg/channel.h"
#include "src/obs/trace.h"
#include "src/sim/poll.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace cxlpool::msg {

inline constexpr uint8_t kRpcRequest = 0;
inline constexpr uint8_t kRpcResponse = 1;
inline constexpr uint8_t kRpcErrorResponse = 2;

class RpcClient {
 public:
  explicit RpcClient(Endpoint& endpoint)
      : endpoint_(endpoint), turn_(endpoint.loop(), 1) {}

  // Enables client-side spans (rpc.enqueue) and on-wire propagation of
  // `ctx`. Null (the default) keeps every hook one branch.
  void BindTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  // Issues a call and waits for the response (until `deadline`, absolute).
  // Calls from concurrent coroutines are serialized internally (the
  // channel carries one outstanding request at a time). `ctx` is the
  // caller's trace context; it rides the request header so the server's
  // spans attach to the same trace.
  sim::Task<Result<std::vector<std::byte>>> Call(uint16_t method,
                                                 std::span<const std::byte> request,
                                                 Nanos deadline,
                                                 obs::TraceContext ctx = {});

 private:
  Endpoint& endpoint_;
  uint64_t next_call_id_ = 1;
  sim::Semaphore turn_;
  obs::Tracer* tracer_ = nullptr;
};

class RpcServer {
 public:
  // Handler returns the response payload or an error status (reported to
  // the caller as kRpcErrorResponse carrying the code).
  using Handler = std::function<sim::Task<Result<std::vector<std::byte>>>(
      uint16_t method, std::span<const std::byte> request)>;
  // Trace-aware handler: additionally receives the request's trace context
  // (zero when the caller was untraced) for spans under the serve span.
  using TracedHandler = std::function<sim::Task<Result<std::vector<std::byte>>>(
      uint16_t method, std::span<const std::byte> request,
      obs::TraceContext ctx)>;

  RpcServer(Endpoint& endpoint, Handler handler)
      : endpoint_(endpoint),
        handler_([h = std::move(handler)](uint16_t method,
                                          std::span<const std::byte> request,
                                          obs::TraceContext) {
          return h(method, request);
        }) {}
  RpcServer(Endpoint& endpoint, TracedHandler handler)
      : endpoint_(endpoint), handler_(std::move(handler)) {}

  // Enables server-side spans: rpc.flight (recorded retroactively from the
  // request's sent_at), rpc.serve around the handler, rpc.reply around the
  // response send.
  void BindTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  // Serve loop; runs until `stop` fires. Spawn as a detached task. Exits
  // (and counts a serve_abort) when the channel path dies — e.g. the
  // backing MHD failed or this host crashed. Use ServeSupervised when the
  // server must come back after transient faults.
  sim::Task<> Serve(sim::StopToken& stop);

  // Restart supervisor: re-enters Serve after every abort, backing off
  // exponentially (deterministic, no jitter: one restart probe per backoff
  // is harmless) while the channel stays dead, until `stop` fires.
  sim::Task<> ServeSupervised(sim::StopToken& stop,
                              Nanos initial_backoff = 10 * kMicrosecond,
                              Nanos max_backoff = 200 * kMicrosecond);

  struct Stats {
    uint64_t calls_served = 0;
    uint64_t serve_aborts = 0;  // Serve exited on channel death
    uint64_t restarts = 0;      // ServeSupervised re-entered Serve
  };
  const Stats& stats() const { return stats_; }
  uint64_t calls_served() const { return stats_.calls_served; }

 private:
  Endpoint& endpoint_;
  TracedHandler handler_;
  Stats stats_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace cxlpool::msg

#endif  // SRC_MSG_RPC_H_
