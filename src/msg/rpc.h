// Minimal RPC over a Channel. Used by the pooling orchestrator/agents and
// by the MMIO forwarding datapath (core/). One client per endpoint; calls
// are serialized (the control plane is low-rate by design — the hot
// datapath uses rings directly).
//
// Wire format: [u8 kind][u64 call_id][u16 method][payload...]
#ifndef SRC_MSG_RPC_H_
#define SRC_MSG_RPC_H_

#include <functional>
#include <vector>

#include "src/common/status.h"
#include "src/msg/channel.h"
#include "src/sim/poll.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace cxlpool::msg {

inline constexpr uint8_t kRpcRequest = 0;
inline constexpr uint8_t kRpcResponse = 1;
inline constexpr uint8_t kRpcErrorResponse = 2;

class RpcClient {
 public:
  explicit RpcClient(Endpoint& endpoint)
      : endpoint_(endpoint), turn_(endpoint.loop(), 1) {}

  // Issues a call and waits for the response (until `deadline`, absolute).
  // Calls from concurrent coroutines are serialized internally (the
  // channel carries one outstanding request at a time).
  sim::Task<Result<std::vector<std::byte>>> Call(uint16_t method,
                                                 std::span<const std::byte> request,
                                                 Nanos deadline);

 private:
  Endpoint& endpoint_;
  uint64_t next_call_id_ = 1;
  sim::Semaphore turn_;
};

class RpcServer {
 public:
  // Handler returns the response payload or an error status (reported to
  // the caller as kRpcErrorResponse carrying the code).
  using Handler = std::function<sim::Task<Result<std::vector<std::byte>>>(
      uint16_t method, std::span<const std::byte> request)>;

  RpcServer(Endpoint& endpoint, Handler handler)
      : endpoint_(endpoint), handler_(std::move(handler)) {}

  // Serve loop; runs until `stop` fires. Spawn as a detached task.
  sim::Task<> Serve(sim::StopToken& stop);

  uint64_t calls_served() const { return calls_served_; }

 private:
  Endpoint& endpoint_;
  Handler handler_;
  uint64_t calls_served_ = 0;
};

}  // namespace cxlpool::msg

#endif  // SRC_MSG_RPC_H_
