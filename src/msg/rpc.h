// Minimal RPC over a Channel. Used by the pooling orchestrator/agents and
// by the MMIO forwarding datapath (core/). One client per endpoint; calls
// are serialized (the control plane is low-rate by design — the hot
// datapath uses rings directly).
//
// Wire format: [u8 kind][u64 call_id][u16 method][payload...]
#ifndef SRC_MSG_RPC_H_
#define SRC_MSG_RPC_H_

#include <functional>
#include <vector>

#include "src/common/status.h"
#include "src/msg/channel.h"
#include "src/sim/poll.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace cxlpool::msg {

inline constexpr uint8_t kRpcRequest = 0;
inline constexpr uint8_t kRpcResponse = 1;
inline constexpr uint8_t kRpcErrorResponse = 2;

class RpcClient {
 public:
  explicit RpcClient(Endpoint& endpoint)
      : endpoint_(endpoint), turn_(endpoint.loop(), 1) {}

  // Issues a call and waits for the response (until `deadline`, absolute).
  // Calls from concurrent coroutines are serialized internally (the
  // channel carries one outstanding request at a time).
  sim::Task<Result<std::vector<std::byte>>> Call(uint16_t method,
                                                 std::span<const std::byte> request,
                                                 Nanos deadline);

 private:
  Endpoint& endpoint_;
  uint64_t next_call_id_ = 1;
  sim::Semaphore turn_;
};

class RpcServer {
 public:
  // Handler returns the response payload or an error status (reported to
  // the caller as kRpcErrorResponse carrying the code).
  using Handler = std::function<sim::Task<Result<std::vector<std::byte>>>(
      uint16_t method, std::span<const std::byte> request)>;

  RpcServer(Endpoint& endpoint, Handler handler)
      : endpoint_(endpoint), handler_(std::move(handler)) {}

  // Serve loop; runs until `stop` fires. Spawn as a detached task. Exits
  // (and counts a serve_abort) when the channel path dies — e.g. the
  // backing MHD failed or this host crashed. Use ServeSupervised when the
  // server must come back after transient faults.
  sim::Task<> Serve(sim::StopToken& stop);

  // Restart supervisor: re-enters Serve after every abort, backing off
  // exponentially (deterministic, no jitter: one restart probe per backoff
  // is harmless) while the channel stays dead, until `stop` fires.
  sim::Task<> ServeSupervised(sim::StopToken& stop,
                              Nanos initial_backoff = 10 * kMicrosecond,
                              Nanos max_backoff = 200 * kMicrosecond);

  struct Stats {
    uint64_t calls_served = 0;
    uint64_t serve_aborts = 0;  // Serve exited on channel death
    uint64_t restarts = 0;      // ServeSupervised re-entered Serve
  };
  const Stats& stats() const { return stats_; }
  uint64_t calls_served() const { return stats_.calls_served; }

 private:
  Endpoint& endpoint_;
  Handler handler_;
  Stats stats_;
};

}  // namespace cxlpool::msg

#endif  // SRC_MSG_RPC_H_
