// DoorbellCoalescer: folds N pending doorbell rings into one non-temporal
// store of the maximum value.
//
// A doorbell carries no payload — only "progress advanced to N" — so
// consecutive rings are perfectly mergeable: ringing the max once is
// observationally identical to ringing every intermediate value, at one
// nt-store (or one forwarded MMIO RPC) instead of N. The flush policy is
// watermark-or-deadline:
//
//   * watermark  — flush when this many offers accumulated (pure count
//                  batching, e.g. RX buffer posting);
//   * max_delay  — arm a timer on the first pending offer and flush when
//                  it lapses, so a trickle of offers is never deferred
//                  longer than max_delay (the hard latency bound).
//
// The ring action is injected as a function so the same policy + stats
// cover both flavors of doorbell in the tree: a msg::DoorbellSender CXL
// line and a forwarded MMIO register write (VirtualNic's RX doorbell).
//
// Values are folded with max() and a flush that would not advance past
// the last rung value is skipped entirely — rung values are strictly
// increasing whenever offered values are monotone, which downstream
// consumers (contiguous-prefix doorbells) rely on.
#ifndef SRC_MSG_COALESCE_H_
#define SRC_MSG_COALESCE_H_

#include <functional>
#include <memory>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/sim/event_loop.h"
#include "src/sim/task.h"

namespace cxlpool::msg {

class DoorbellCoalescer {
 public:
  // Performs the actual ring (nt-store, MMIO write, ...). Must tolerate
  // being invoked from a detached timer task: the coalescer guarantees it
  // is never called after the coalescer is destroyed.
  using RingFn = std::function<sim::Task<Status>(uint64_t value)>;

  struct Options {
    // Flush after this many offers. 1 = ring-through (no count batching).
    uint32_t watermark = 1;
    // Flush a partial batch this long after its first offer. 0 = no
    // timer: only the watermark or an explicit Flush() rings. This is the
    // hard latency bound on any offered value reaching the wire.
    Nanos max_delay = 0;
  };

  struct Stats {
    uint64_t offered = 0;
    uint64_t rings = 0;             // ring actions actually issued
    uint64_t coalesced = 0;         // offers folded into another ring
    uint64_t watermark_flushes = 0;
    uint64_t deadline_flushes = 0;
    uint64_t forced_flushes = 0;    // explicit Flush() with pending state
    uint64_t skipped_stale = 0;     // flushes dropped: value not beyond last rung
  };

  DoorbellCoalescer(sim::EventLoop& loop, RingFn ring, Options options);
  ~DoorbellCoalescer();
  DoorbellCoalescer(const DoorbellCoalescer&) = delete;
  DoorbellCoalescer& operator=(const DoorbellCoalescer&) = delete;

  // Folds `value` into the pending batch (max) and flushes per policy.
  // The returned status reflects a flush performed BY this offer; a
  // deferred offer returns OK and any ring failure surfaces on the flush
  // that carries it.
  sim::Task<Status> Offer(uint64_t value);

  // Forces the pending value out now (e.g. before blocking on completions).
  // No-op when nothing is pending.
  sim::Task<Status> Flush();

  // Drops pending state and the last-rung watermark without ringing —
  // for rebind/reprogram, where the device's doorbell state restarted.
  void Reset();

  const Stats& stats() const { return state_->stats; }
  bool dirty() const { return state_->dirty; }
  uint64_t pending_value() const { return state_->pending; }
  uint64_t last_rung() const { return state_->last_rung; }

 private:
  // Everything the detached deadline timer touches lives here, behind a
  // shared_ptr: the timer outlasting the coalescer observes `closed` and
  // exits instead of dangling.
  struct State {
    explicit State(sim::EventLoop& l) : loop(l) {}
    sim::EventLoop& loop;
    RingFn ring;
    uint64_t pending = 0;
    uint64_t last_rung = 0;
    uint32_t since_flush = 0;  // offers folded into the pending batch
    bool dirty = false;
    bool timer_armed = false;
    bool closed = false;
    Stats stats;
  };

  static sim::Task<Status> FlushNow(std::shared_ptr<State> s);
  static sim::Task<> DeadlineFlush(std::shared_ptr<State> s, Nanos delay);

  Options options_;
  std::shared_ptr<State> state_;
};

}  // namespace cxlpool::msg

#endif  // SRC_MSG_COALESCE_H_
