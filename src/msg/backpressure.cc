#include "src/msg/backpressure.h"

#include <cmath>

namespace cxlpool::msg {

AdmissionController::AdmissionController(Options options) : options_(options) {}

void AdmissionController::BindMetrics(obs::Registry* registry,
                                      const obs::Labels& labels) {
  if (registry == nullptr) {
    return;
  }
  obs::Labels control = labels;
  control.emplace_back("priority", "control");
  obs::Labels data = labels;
  data.emplace_back("priority", "data");
  control_hist_ = registry->GetHistogram("rpc.queue_delay_ns", control);
  data_hist_ = registry->GetHistogram("rpc.queue_delay_ns", data);
  inflight_gauge_ = registry->GetGauge("agent.inflight", labels);
}

bool AdmissionController::ShouldShed(Nanos sojourn, uint8_t priority,
                                     Nanos now) {
  ++stats_.observed;
  if (priority == kPriorityControl) {
    control_hist_->Add(sojourn);
    return false;  // control plane is never shed, never drives CoDel state
  }
  data_hist_->Add(sojourn);
  if (sojourn < options_.target) {
    first_above_ = 0;
    dropping_ = false;
    return false;
  }
  if (first_above_ == 0) {
    // First sojourn above target: arm the interval, shed nothing yet.
    first_above_ = now + options_.interval;
    return false;
  }
  if (!dropping_) {
    if (now < first_above_) {
      return false;  // above target but the interval hasn't elapsed
    }
    dropping_ = true;
    drop_count_ = 0;
    drop_next_ = now;
  }
  if (now >= drop_next_) {
    ++drop_count_;
    // Classic CoDel cadence: drop faster the longer the queue stays above
    // target (interval / sqrt(count)).
    drop_next_ =
        now + static_cast<Nanos>(static_cast<double>(options_.interval) /
                                 std::sqrt(static_cast<double>(drop_count_)));
    ++stats_.shed;
    return true;
  }
  return false;
}

bool AdmissionController::TryEnterServe() {
  if (options_.max_inflight > 0 && inflight_ >= options_.max_inflight) {
    ++stats_.inflight_rejects;
    return false;
  }
  ++inflight_;
  if (inflight_gauge_ != nullptr) {
    inflight_gauge_->Set(inflight_);
  }
  return true;
}

void AdmissionController::ExitServe() {
  if (inflight_ > 0) {
    --inflight_;
  }
  if (inflight_gauge_ != nullptr) {
    inflight_gauge_->Set(inflight_);
  }
}

bool CircuitBreaker::Allow(Nanos now) {
  if (!enabled()) {
    return true;
  }
  switch (state(now)) {
    case State::kClosed:
      return true;
    case State::kHalfOpen:
      ++stats_.probes;
      return true;
    case State::kOpen:
      ++stats_.fast_fails;
      return false;
  }
  return true;
}

CircuitBreaker::State CircuitBreaker::state(Nanos now) {
  if (state_ == State::kOpen && now >= opened_at_ + options_.open_duration) {
    state_ = State::kHalfOpen;
    half_open_streak_ = 0;
  }
  return state_;
}

void CircuitBreaker::Trip(Nanos now) {
  state_ = State::kOpen;
  opened_at_ = now;
  consecutive_failures_ = 0;
  half_open_streak_ = 0;
  ++stats_.opens;
  if (on_open_) {
    on_open_();
  }
}

void CircuitBreaker::RecordSuccess(Nanos now) {
  if (!enabled()) {
    return;
  }
  switch (state(now)) {
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kHalfOpen:
      if (++half_open_streak_ >= options_.half_open_successes) {
        state_ = State::kClosed;
        consecutive_failures_ = 0;
      }
      break;
    case State::kOpen:
      break;  // stale completion from before the trip; ignore
  }
}

void CircuitBreaker::RecordFailure(Nanos now) {
  if (!enabled()) {
    return;
  }
  switch (state(now)) {
    case State::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        Trip(now);
      }
      break;
    case State::kHalfOpen:
      Trip(now);  // the probe failed; straight back to open
      break;
    case State::kOpen:
      break;
  }
}

}  // namespace cxlpool::msg
