// A shared-memory doorbell: one 64 B pool line carrying a monotonically
// increasing u64. Ringing is a single non-temporal store; watching is an
// invalidate+load poll. Cheaper than a ring when the only information is
// "progress advanced to N" — e.g. queue tail pointers mirrored into CXL.
#ifndef SRC_MSG_DOORBELL_H_
#define SRC_MSG_DOORBELL_H_

#include <array>

#include "src/common/status.h"
#include "src/cxl/host_adapter.h"
#include "src/msg/wire.h"
#include "src/obs/trace.h"
#include "src/sim/poll.h"
#include "src/sim/task.h"

namespace cxlpool::msg {

class DoorbellSender {
 public:
  DoorbellSender(cxl::HostAdapter& host, uint64_t line_addr)
      : host_(host), addr_(line_addr) {}

  // Declares the data region this doorbell publishes progress over. When
  // set, every Ring is a coherence handoff point: the region must hold no
  // unpublished (dirty cached) lines of the ringing host at that moment
  // (checked by analysis::CoherenceChecker when one is attached).
  void SetAnnouncedRegion(uint64_t base, uint64_t len) {
    region_base_ = base;
    region_len_ = len;
  }

  // Enables the doorbell.ring span when Ring is called with a traced
  // parent context.
  void BindTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  // Publishes `value` (callers use monotonically increasing values).
  // Must be a coroutine: `buf` has to outlive the suspended StoreNt task,
  // so it lives in this frame, not on a stack that unwinds immediately.
  // `ctx` attaches the ring's nt-store to the operation that caused it
  // (e.g. a queue-pair submit).
  sim::Task<Status> Ring(uint64_t value, obs::TraceContext ctx = {}) {
    if (region_len_ != 0) {
      host_.NoteHandoff(region_base_, region_len_, "doorbell-ring");
    }
    obs::Span span = obs::MaybeStartSpan(
        tracer_, "doorbell.ring", host_.id().value(), ctx, host_.loop().now());
    // Pin the loop into this frame: the sender may be destroyed while the
    // store is in flight, so no member access after the co_await.
    sim::EventLoop& loop = host_.loop();
    std::array<std::byte, 8> buf;
    wire::PutU64(buf.data(), value);
    Status st = co_await host_.StoreNt(addr_, buf);
    span.End(loop.now());
    co_return st;
  }

 private:
  cxl::HostAdapter& host_;
  uint64_t addr_;
  uint64_t region_base_ = 0;
  uint64_t region_len_ = 0;
  obs::Tracer* tracer_ = nullptr;
};

class DoorbellWatcher {
 public:
  DoorbellWatcher(cxl::HostAdapter& host, uint64_t line_addr,
                  Nanos poll_min = 100, Nanos poll_max = 2 * kMicrosecond)
      : host_(host), addr_(line_addr), backoff_(poll_min, poll_max) {}

  // Single fresh read of the doorbell value.
  sim::Task<Result<uint64_t>> ReadValue() {
    Status st = co_await host_.Invalidate(addr_, 8);
    if (!st.ok()) {
      co_return st;
    }
    std::array<std::byte, 8> buf;
    st = co_await host_.Load(addr_, buf);
    if (!st.ok()) {
      co_return st;
    }
    co_return wire::GetU64(buf.data());
  }

  // Waits until the doorbell value exceeds `last_seen` or `deadline` hits.
  sim::Task<Result<uint64_t>> WaitBeyond(uint64_t last_seen, Nanos deadline) {
    for (;;) {
      auto v = co_await ReadValue();
      if (!v.ok()) {
        backoff_.Reset();
        co_return v.status();
      }
      if (*v > last_seen) {
        backoff_.Reset();
        co_return *v;
      }
      Nanos now = host_.loop().now();
      if (now >= deadline) {
        // Reset on EVERY exit, not just success: a watcher that timed out
        // at max backoff would otherwise start its next (unrelated) wait
        // at max poll interval and see the first advance up to poll_max
        // late — first-poll latency must not depend on the previous
        // wait's outcome.
        backoff_.Reset();
        co_return DeadlineExceeded("doorbell unchanged");
      }
      co_await sim::Delay(host_.loop(), std::min(backoff_.NextDelay(), deadline - now));
    }
  }

 private:
  cxl::HostAdapter& host_;
  uint64_t addr_;
  sim::PollBackoff backoff_;
};

}  // namespace cxlpool::msg

#endif  // SRC_MSG_DOORBELL_H_
