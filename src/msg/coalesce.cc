#include "src/msg/coalesce.h"

#include <algorithm>
#include <utility>

namespace cxlpool::msg {

DoorbellCoalescer::DoorbellCoalescer(sim::EventLoop& loop, RingFn ring,
                                     Options options)
    : options_(options), state_(std::make_shared<State>(loop)) {
  if (options_.watermark == 0) {
    options_.watermark = 1;
  }
  state_->ring = std::move(ring);
}

DoorbellCoalescer::~DoorbellCoalescer() { state_->closed = true; }

sim::Task<Status> DoorbellCoalescer::FlushNow(std::shared_ptr<State> s) {
  if (!s->dirty) {
    co_return OkStatus();
  }
  uint64_t value = s->pending;
  uint64_t folded = s->since_flush;
  s->dirty = false;
  s->since_flush = 0;
  if (value <= s->last_rung) {
    // Nothing beyond what the consumer already saw — e.g. a forced flush
    // racing a watermark flush. Ringing a non-advancing value would break
    // the monotone contract, so drop it.
    s->stats.skipped_stale += 1;
    s->stats.coalesced += folded;
    co_return OkStatus();
  }
  s->stats.rings += 1;
  s->stats.coalesced += folded > 0 ? folded - 1 : 0;
  s->last_rung = value;
  // The ring fn is copied into this frame: `s` keeps the State alive, and
  // a coalescer destroyed mid-ring only flips `closed` (checked by the
  // timer path before entering here).
  RingFn ring = s->ring;
  co_return co_await ring(value);
}

sim::Task<> DoorbellCoalescer::DeadlineFlush(std::shared_ptr<State> s,
                                             Nanos delay) {
  co_await sim::Delay(s->loop, delay);
  s->timer_armed = false;
  if (s->closed || !s->dirty) {
    co_return;
  }
  s->stats.deadline_flushes += 1;
  // A dying CXL/MMIO path cannot be reported to anyone from a detached
  // timer; the next explicit Offer/Flush on the same path surfaces it.
  Status st = co_await FlushNow(s);
  (void)st;
}

sim::Task<Status> DoorbellCoalescer::Offer(uint64_t value) {
  State& s = *state_;
  s.stats.offered += 1;
  s.pending = std::max(s.pending, value);
  s.since_flush += 1;
  s.dirty = true;
  if (s.since_flush >= options_.watermark) {
    s.stats.watermark_flushes += 1;
    co_return co_await FlushNow(state_);
  }
  if (options_.max_delay > 0 && !s.timer_armed) {
    s.timer_armed = true;
    sim::Spawn(DeadlineFlush(state_, options_.max_delay));
  }
  co_return OkStatus();
}

sim::Task<Status> DoorbellCoalescer::Flush() {
  if (state_->dirty) {
    state_->stats.forced_flushes += 1;
  }
  co_return co_await FlushNow(state_);
}

void DoorbellCoalescer::Reset() {
  state_->pending = 0;
  state_->last_rung = 0;
  state_->since_flush = 0;
  state_->dirty = false;
}

}  // namespace cxlpool::msg
