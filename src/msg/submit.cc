#include "src/msg/submit.h"

#include <algorithm>
#include <memory>

#include "src/common/check.h"

namespace cxlpool::msg {

namespace {
// Fires `ev` after `delay`; holds shared ownership so the waiter may
// resume (and drop its reference) before the timer lapses.
sim::Task<> NagleTimer(sim::EventLoop& loop, Nanos delay,
                       std::shared_ptr<sim::Event> ev) {
  co_await sim::Delay(loop, delay);
  ev->Set();
}
}  // namespace

size_t MpscSubmitter::StagedData() const {
  size_t n = 0;
  for (const Ticket* t : staged_) {
    if (t->priority != kPriorityControl) {
      ++n;
    }
  }
  return n;
}

sim::Task<Status> MpscSubmitter::Submit(std::span<const std::byte> payload,
                                        uint8_t priority) {
  if (priority != kPriorityControl && options_.max_staged > 0 &&
      StagedData() >= options_.max_staged) {
    ++stats_.rejected;
    co_return Overloaded("submission front staging bound");
  }
  ++stats_.submitted;
  Ticket ticket(sender_.host().loop());
  ticket.payload = payload;
  ticket.priority = priority;
  if (priority == kPriorityControl) {
    // Ahead of every staged data frame, behind earlier control: control
    // stays FIFO among itself but never queues behind a data burst.
    auto pos = std::find_if(
        staged_.begin(), staged_.end(),
        [](const Ticket* t) { return t->priority != kPriorityControl; });
    staged_.insert(pos, &ticket);
  } else {
    staged_.push_back(&ticket);
  }
  // A drainer in its Nagle fill wait flushes early once the batch fills.
  if (fill_wake_ != nullptr && staged_.size() >= options_.watermark) {
    fill_wake_->Set();
  }

  if (!draining_) {
    // Single-atomic-claim: first stager takes the drainer role.
    draining_ = true;
    co_await Drain(&ticket, /*fresh=*/true);
    co_return ticket.result;
  }
  co_await ticket.wake.Wait();
  if (ticket.finished) {
    co_return ticket.result;
  }
  // Woken to inherit the drainer role from a finished predecessor. The
  // inherited drain skips the Nagle fill wait: this frame already aged in
  // the staging queue, so max_delay stays the per-frame latency bound.
  CXLPOOL_CHECK(ticket.drainer);
  co_await Drain(&ticket, /*fresh=*/false);
  co_return ticket.result;
}

sim::Task<> MpscSubmitter::Drain(Ticket* self, bool fresh) {
  sim::EventLoop& loop = sender_.host().loop();
  if (fresh && options_.max_delay > 0 && staged_.size() < options_.watermark) {
    // Nagle: bounded wait for the batch to fill, cut short the moment the
    // watermark is reached. max_delay IS the hard latency bound — we
    // flush whatever is staged when it elapses.
    ++stats_.nagle_waits;
    auto filled = std::make_shared<sim::Event>(loop);
    fill_wake_ = filled.get();
    sim::Spawn(NagleTimer(loop, options_.max_delay, filled));
    co_await filled->Wait();
    fill_wake_ = nullptr;
  }
  while (true) {
    CXLPOOL_CHECK(!staged_.empty());  // self stays staged until sent
    size_t n = std::min<size_t>(staged_.size(), options_.watermark);
    std::vector<Ticket*> batch(staged_.begin(), staged_.begin() + n);
    staged_.erase(staged_.begin(), staged_.begin() + n);
    std::vector<std::span<const std::byte>> frames;
    frames.reserve(n);
    for (Ticket* t : batch) {
      frames.push_back(t->payload);
    }
    Status st = co_await sender_.SendBatch(frames);
    ++stats_.batches;
    stats_.batched_frames += n;
    stats_.max_batch = std::max<uint64_t>(stats_.max_batch, n);
    bool self_done = false;
    for (Ticket* t : batch) {
      t->result = st;
      t->finished = true;
      if (t == self) {
        self_done = true;
      } else {
        t->wake.Set();
      }
    }
    if (!self_done) {
      continue;  // keep draining until our own frame is on the wire
    }
    // Our frame is sent: hand the drainer role to the oldest still-staged
    // ticket instead of staying to finish the whole convoy.
    if (staged_.empty()) {
      draining_ = false;
    } else {
      ++stats_.handoffs;
      staged_.front()->drainer = true;
      staged_.front()->wake.Set();
    }
    co_return;
  }
}

}  // namespace cxlpool::msg
