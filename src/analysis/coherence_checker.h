// CoherenceChecker: a happens-before race detector for the software
// coherence protocol over the non-coherent CXL pool (paper §4.1).
//
// Nothing in the hardware model catches a missed publish/consume step —
// a forgotten Invalidate silently reads stale bytes, an unflushed Store
// silently loses a write. This checker turns those bugs into typed,
// deterministic reports. It keeps shadow state per 64 B pool line:
//
//   - a monotonic *line version*, bumped by every publish (nt-store,
//     device DMA write, dirty writeback),
//   - the last publisher and publish time,
//   - per-host cached-copy state: the version snapshot the host's private
//     copy corresponds to, and whether the copy holds unpublished (dirty)
//     bytes,
//   - a small provenance ring of recent accesses with sim timestamps.
//
// Fed by CoherenceObserver events from instrumented HostAdapters, it
// reports four violation classes:
//
//   stale-read           a cached Load (or DMA snoop hit) observed a copy
//                        older than the latest publish, with no
//                        intervening Invalidate — the consume half of the
//                        protocol was skipped.
//   unpublished-handoff  a doorbell/RPC/ownership transfer announced a
//                        region while the announcing host still held
//                        dirty (unpublished) lines in it — the publish
//                        half was skipped.
//   lost-publish         unpublished dirty bytes were destroyed: an
//                        nt-store or DMA write clobbered them, a
//                        writeback raced a newer publish, or the
//                        writeback path died. Attributes the adapter's
//                        anonymous lost_dirty_lines counter.
//   write-write race     two hosts held dirty copies of the same line
//                        with no ordering edge between them — last
//                        writeback wins, the other write vanishes.
//
// The checker is opt-in per CxlPod (AttachTo); with no checker attached
// the instrumentation is a null-pointer check per line. Checking is pure
// observation: it never alters simulated timing or data, so enabling it
// cannot mask or introduce protocol bugs.
#ifndef SRC_ANALYSIS_COHERENCE_CHECKER_H_
#define SRC_ANALYSIS_COHERENCE_CHECKER_H_

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/units.h"
#include "src/cxl/coherence_observer.h"
#include "src/cxl/pod.h"
#include "src/obs/obs.h"

namespace cxlpool::analysis {

class CoherenceChecker : public cxl::CoherenceObserver {
 public:
  enum class ViolationType : uint8_t {
    kStaleRead = 0,
    kUnpublishedHandoff,
    kLostPublish,
    kWriteWriteRace,
  };
  static constexpr int kNumViolationTypes = 4;
  static std::string_view ViolationTypeName(ViolationType type);

  // One recent access to a line (provenance for violation reports).
  struct Access {
    Nanos time = 0;
    HostId host;
    cxl::CoherenceOp op = cxl::CoherenceOp::kLoadHit;
    uint64_t version = 0;  // line version at the time of the access
  };

  struct Violation {
    ViolationType type;
    uint64_t line_addr = 0;
    HostId offender;            // the agent whose access tripped the check
    HostId other;               // counterpart (publisher / dirty holder), if any
    uint64_t observed_version = 0;  // version the offender acted on
    uint64_t latest_version = 0;    // line version at detection time
    Nanos time = 0;
    std::string context;        // human-readable detail (handoff site, op)
    std::vector<Access> provenance;  // recent accesses, oldest first

    std::string ToString() const;
  };

  struct Options {
    // Violations retained verbatim for reporting; counters are unbounded.
    size_t max_recorded_violations = 256;
  };

  CoherenceChecker() : CoherenceChecker(Options{}) {}
  explicit CoherenceChecker(Options options) : options_(options) {}
  CoherenceChecker(const CoherenceChecker&) = delete;
  CoherenceChecker& operator=(const CoherenceChecker&) = delete;
  ~CoherenceChecker() override { Detach(); }

  // Attaches to every host of `pod`. The checker must outlive the pod's
  // traffic (it detaches itself on destruction). Back-Invalidate pods are
  // handled: BI snoops count as ordering edges.
  void AttachTo(cxl::CxlPod& pod);
  void Detach();

  // Optional observability bundle: each detected violation is noted in the
  // offender host's flight ring and triggers one flight-recorder dump (so
  // the per-host history is preserved at first-detection time), and the
  // per-type violation counts are exported as registry probes.
  void BindObservability(obs::Observability* obs);

  // cxl::CoherenceObserver:
  void OnLineEvent(const cxl::CoherenceEvent& ev) override;
  void OnHandoff(HostId host, uint64_t addr, uint64_t len,
                 std::string_view what, Nanos time) override;

  uint64_t violation_count() const { return total_violations_; }
  uint64_t count(ViolationType type) const {
    return counts_[static_cast<size_t>(type)];
  }
  // First `max_recorded_violations` violations, in detection order.
  const std::vector<Violation>& violations() const { return violations_; }
  uint64_t events_seen() const { return events_seen_; }

  // Multi-line human-readable summary ("coherence check: clean, N events"
  // or per-type counts plus the first few full reports).
  std::string Report() const;

 private:
  static constexpr size_t kProvenanceRing = 6;

  struct HostCopy {
    uint64_t version = 0;     // line version this copy corresponds to
    bool dirty = false;
    uint64_t dirty_base = 0;  // line version when the copy first went dirty
  };

  struct LineState {
    uint64_t version = 0;
    HostId last_publisher;
    cxl::CoherenceOp last_publish_op = cxl::CoherenceOp::kStoreNt;
    Nanos last_publish_time = 0;
    // Keyed by host id value; pods are small (<= 20 hosts).
    std::unordered_map<uint32_t, HostCopy> copies;
    std::array<Access, kProvenanceRing> ring;
    uint8_t ring_next = 0;
    uint8_t ring_count = 0;
  };

  LineState& Line(uint64_t line_addr) { return lines_[line_addr]; }
  void RecordAccess(LineState& line, const cxl::CoherenceEvent& ev);
  void Publish(LineState& line, const cxl::CoherenceEvent& ev);
  void ReportViolation(ViolationType type, const LineState& line,
                       uint64_t line_addr, HostId offender, HostId other,
                       uint64_t observed_version, Nanos time,
                       std::string context);

  Options options_;
  cxl::CxlPod* pod_ = nullptr;
  obs::Observability* obs_ = nullptr;
  std::unordered_map<uint64_t, LineState> lines_;
  std::vector<Violation> violations_;
  std::array<uint64_t, kNumViolationTypes> counts_ = {};
  uint64_t total_violations_ = 0;
  uint64_t events_seen_ = 0;
};

}  // namespace cxlpool::analysis

#endif  // SRC_ANALYSIS_COHERENCE_CHECKER_H_
