#include "src/analysis/coherence_checker.h"

#include <sstream>

#include "src/common/check.h"

namespace cxlpool::analysis {

using cxl::CoherenceOp;
using cxl::CoherenceOpName;

std::string_view CoherenceChecker::ViolationTypeName(ViolationType type) {
  switch (type) {
    case ViolationType::kStaleRead:
      return "stale-read";
    case ViolationType::kUnpublishedHandoff:
      return "unpublished-handoff";
    case ViolationType::kLostPublish:
      return "lost-publish";
    case ViolationType::kWriteWriteRace:
      return "write-write-race";
  }
  return "unknown";
}

std::string CoherenceChecker::Violation::ToString() const {
  std::ostringstream os;
  os << ViolationTypeName(type) << " @line 0x" << std::hex << line_addr
     << std::dec << " t=" << time << "ns host" << offender;
  if (other.valid()) {
    os << " vs host" << other;
  }
  os << " (saw v" << observed_version << ", latest v" << latest_version << "): "
     << context;
  if (!provenance.empty()) {
    os << "\n    recent accesses:";
    for (const Access& a : provenance) {
      os << "\n      t=" << a.time << "ns host" << a.host << " "
         << CoherenceOpName(a.op) << " v" << a.version;
    }
  }
  return os.str();
}

void CoherenceChecker::AttachTo(cxl::CxlPod& pod) {
  CXLPOOL_CHECK(pod_ == nullptr);
  pod_ = &pod;
  pod.SetCoherenceObserver(this);
}

void CoherenceChecker::Detach() {
  if (pod_ != nullptr) {
    pod_->SetCoherenceObserver(nullptr);
    pod_ = nullptr;
  }
}

void CoherenceChecker::BindObservability(obs::Observability* obs) {
  obs_ = obs;
  if (obs_ == nullptr) {
    return;
  }
  for (int t = 0; t < kNumViolationTypes; ++t) {
    auto type = static_cast<ViolationType>(t);
    obs_->metrics().RegisterProbe(
        "coherence.violations", {{"type", std::string(ViolationTypeName(type))}},
        [this, type] { return static_cast<int64_t>(count(type)); });
  }
  obs_->metrics().RegisterProbe("coherence.events_seen", {}, [this] {
    return static_cast<int64_t>(events_seen_);
  });
}

void CoherenceChecker::RecordAccess(LineState& line,
                                    const cxl::CoherenceEvent& ev) {
  line.ring[line.ring_next] = Access{ev.time, ev.host, ev.op, line.version};
  line.ring_next = static_cast<uint8_t>((line.ring_next + 1) % kProvenanceRing);
  if (line.ring_count < kProvenanceRing) {
    ++line.ring_count;
  }
}

void CoherenceChecker::ReportViolation(ViolationType type,
                                       const LineState& line,
                                       uint64_t line_addr, HostId offender,
                                       HostId other, uint64_t observed_version,
                                       Nanos time, std::string context) {
  ++total_violations_;
  ++counts_[static_cast<size_t>(type)];
  if (obs_ != nullptr) {
    // Land the offending operation in the offender's flight ring *before*
    // dumping, so the dump always contains it.
    obs_->flight().Note(
        time, offender.value(), "coherence",
        "%s line=0x%llx v%llu (latest v%llu) other=h%u %s",
        std::string(ViolationTypeName(type)).c_str(),
        (unsigned long long)line_addr, (unsigned long long)observed_version,
        (unsigned long long)line.version, other.value(), context.c_str());
    obs_->DumpFlight("coherence violation: " +
                     std::string(ViolationTypeName(type)));
  }
  if (violations_.size() >= options_.max_recorded_violations) {
    return;
  }
  Violation v;
  v.type = type;
  v.line_addr = line_addr;
  v.offender = offender;
  v.other = other;
  v.observed_version = observed_version;
  v.latest_version = line.version;
  v.time = time;
  v.context = std::move(context);
  // Unroll the ring oldest-first.
  v.provenance.reserve(line.ring_count);
  for (uint8_t i = 0; i < line.ring_count; ++i) {
    size_t idx = (line.ring_next + kProvenanceRing - line.ring_count + i) %
                 kProvenanceRing;
    v.provenance.push_back(line.ring[idx]);
  }
  violations_.push_back(std::move(v));
}

void CoherenceChecker::Publish(LineState& line, const cxl::CoherenceEvent& ev) {
  ++line.version;
  line.last_publisher = ev.host;
  line.last_publish_op = ev.op;
  line.last_publish_time = ev.time;
  // The publisher's own private copy is gone: nt-stores and DMA writes
  // drop it (root-complex snoop), writebacks remove the line.
  line.copies.erase(ev.host.value());
  // Under CXL 3.0 Back-Invalidate emulation a pool write snoops out every
  // remote copy — that is a hardware ordering edge, so remote copies are
  // simply forgotten rather than flagged stale later.
  bool bi = pod_ != nullptr && pod_->pool().back_invalidate();
  if (bi && (ev.op == CoherenceOp::kStoreNt || ev.op == CoherenceOp::kDmaWrite)) {
    line.copies.clear();
  }
}

void CoherenceChecker::OnLineEvent(const cxl::CoherenceEvent& ev) {
  ++events_seen_;
  LineState& line = Line(ev.line_addr);

  switch (ev.op) {
    case CoherenceOp::kLoadMiss: {
      // Fresh fetch from the pool: the private copy now corresponds to the
      // latest published version.
      line.copies[ev.host.value()] = HostCopy{line.version, false, 0};
      break;
    }

    case CoherenceOp::kLoadHit:
    case CoherenceOp::kDmaReadHit: {
      auto it = line.copies.find(ev.host.value());
      // An untracked hit can only happen if the checker attached after
      // traffic started; adopt the copy at the current version.
      if (it == line.copies.end()) {
        line.copies[ev.host.value()] = HostCopy{line.version, false, 0};
        break;
      }
      const HostCopy& copy = it->second;
      // Reading your own unpublished dirty bytes is coherent locally; the
      // cross-host hazard for dirty copies is reported at publish time.
      if (!copy.dirty && copy.version < line.version) {
        ReportViolation(
            ViolationType::kStaleRead, line, ev.line_addr, ev.host,
            line.last_publisher, copy.version, ev.time,
            std::string(CoherenceOpName(ev.op)) +
                " served from a private copy predating the latest publish (" +
                std::string(CoherenceOpName(line.last_publish_op)) + " by host " +
                std::to_string(line.last_publisher.value()) + " at t=" +
                std::to_string(line.last_publish_time) +
                "ns); missing Invalidate-before-Load");
      }
      break;
    }

    case CoherenceOp::kDmaReadMiss:
      // Served from pool media: fresh by construction, installs nothing.
      break;

    case CoherenceOp::kStoreHit:
    case CoherenceOp::kStoreMiss: {
      HostCopy& copy = line.copies[ev.host.value()];
      if (ev.op == CoherenceOp::kStoreMiss) {
        copy.version = line.version;  // RFO fetched the current bytes
      }
      if (!copy.dirty) {
        copy.dirty = true;
        copy.dirty_base = copy.version;
      }
      // A second host going dirty on the same line is a write-write race:
      // whichever writeback lands last silently wins.
      for (const auto& [other_host, other_copy] : line.copies) {
        if (other_host == ev.host.value() || !other_copy.dirty) {
          continue;
        }
        ReportViolation(
            ViolationType::kWriteWriteRace, line, ev.line_addr, ev.host,
            HostId(other_host), copy.version, ev.time,
            "cached store while host " + std::to_string(other_host) +
                " holds unpublished dirty bytes on the same line; no "
                "ordering edge between the writers");
      }
      break;
    }

    case CoherenceOp::kStoreNt:
    case CoherenceOp::kDmaWrite: {
      // Publishing over another host's unpublished dirty copy: that copy's
      // eventual writeback will clobber this publish (or be clobbered) —
      // either way one write is lost.
      for (const auto& [other_host, other_copy] : line.copies) {
        if (other_host == ev.host.value() || !other_copy.dirty) {
          continue;
        }
        ReportViolation(
            ViolationType::kLostPublish, line, ev.line_addr, ev.host,
            HostId(other_host), line.version, ev.time,
            std::string(CoherenceOpName(ev.op)) + " while host " +
                std::to_string(other_host) +
                " holds unpublished dirty bytes (dirtied at v" +
                std::to_string(other_copy.dirty_base) +
                "); their write-back and this publish race");
      }
      Publish(line, ev);
      break;
    }

    case CoherenceOp::kFlushWriteback:
    case CoherenceOp::kEvictWriteback: {
      auto it = line.copies.find(ev.host.value());
      if (it != line.copies.end() && it->second.dirty &&
          it->second.dirty_base < line.version) {
        // The written-back line was dirtied against an older version: the
        // full-line writeback erases every publish made since.
        ReportViolation(
            ViolationType::kLostPublish, line, ev.line_addr, ev.host,
            line.last_publisher, it->second.dirty_base, ev.time,
            std::string(CoherenceOpName(ev.op)) + " of a line dirtied at v" +
                std::to_string(it->second.dirty_base) +
                " overwrites newer publishes (latest by host " +
                std::to_string(line.last_publisher.value()) + ")");
      }
      Publish(line, ev);
      break;
    }

    case CoherenceOp::kInvalidateDrop:
    case CoherenceOp::kEvictClean: {
      line.copies.erase(ev.host.value());
      break;
    }

    case CoherenceOp::kDirtyLost: {
      // The adapter destroyed unpublished dirty bytes (nt-store overwrite,
      // DMA snoop, dead writeback path). This is the attributed form of
      // the anonymous lost_dirty_lines counter.
      ReportViolation(
          ViolationType::kLostPublish, line, ev.line_addr, ev.host,
          HostId::Invalid(), line.version, ev.time,
          "unpublished dirty bytes destroyed without write-back "
          "(lost_dirty_lines); Flush before overwriting or losing the path");
      line.copies.erase(ev.host.value());
      break;
    }
  }

  RecordAccess(line, ev);
}

void CoherenceChecker::OnHandoff(HostId host, uint64_t addr, uint64_t len,
                                 std::string_view what, Nanos time) {
  ++events_seen_;
  uint64_t first = CachelineFloor(addr);
  uint64_t n = CachelinesTouched(addr, len);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t laddr = first + i * kCachelineSize;
    auto lit = lines_.find(laddr);
    if (lit == lines_.end()) {
      continue;
    }
    LineState& line = lit->second;
    auto cit = line.copies.find(host.value());
    if (cit == line.copies.end() || !cit->second.dirty) {
      continue;
    }
    ReportViolation(
        ViolationType::kUnpublishedHandoff, line, laddr, host,
        HostId::Invalid(), cit->second.version, time,
        "handoff '" + std::string(what) +
            "' announces a region with unpublished dirty bytes; StoreNt or "
            "Flush before ringing");
  }
}

std::string CoherenceChecker::Report() const {
  std::ostringstream os;
  if (total_violations_ == 0) {
    os << "coherence check: clean (" << events_seen_ << " events, "
       << lines_.size() << " lines tracked)";
    return os.str();
  }
  os << "coherence check: " << total_violations_ << " violation(s) over "
     << events_seen_ << " events";
  for (int t = 0; t < kNumViolationTypes; ++t) {
    if (counts_[t] == 0) {
      continue;
    }
    os << "\n  " << ViolationTypeName(static_cast<ViolationType>(t)) << ": "
       << counts_[t];
  }
  size_t shown = 0;
  for (const Violation& v : violations_) {
    if (shown++ >= 8) {
      os << "\n  ... (" << (violations_.size() - 8) << " more recorded)";
      break;
    }
    os << "\n  " << v.ToString();
  }
  return os.str();
}

}  // namespace cxlpool::analysis
