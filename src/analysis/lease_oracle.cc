#include "src/analysis/lease_oracle.h"

#include <string>

namespace cxlpool::analysis {

void LeaseOracle::RecordApply(PcieDeviceId device, uint64_t epoch,
                              uint64_t client_id, Nanos at) {
  ++applies_;
  PerDevice& d = devices_[device];
  if (epoch > d.max_epoch) {
    d.max_epoch = epoch;
    d.max_epoch_first_apply = at;
    d.last_client = client_id;
    return;
  }
  if (epoch < d.max_epoch) {
    // An old-epoch holder applied AFTER a newer epoch was already active
    // on this device: two owners at overlapping sim times.
    ++violations_;
    if (log_.size() < 64) {
      log_.push_back(
          "device " + std::to_string(device.value()) + ": epoch " +
          std::to_string(epoch) + " apply by client " +
          std::to_string(client_id) + " at t=" + std::to_string(at) +
          "ns overlaps epoch " + std::to_string(d.max_epoch) +
          " active since t=" + std::to_string(d.max_epoch_first_apply) + "ns");
    }
  }
  d.last_client = client_id;
}

}  // namespace cxlpool::analysis
