// LeaseOracle: the dual-ownership detector for ISSUE 9's zero-tolerance
// rule. Every forwarded MMIO write the home agents actually APPLY to a
// device BAR is reported here with the epoch it was admitted under. For
// any one device, applied epochs must be nondecreasing over sim time: an
// apply under epoch e arriving after any apply under e' > e means two
// leaseholders were live on the same device at overlapping times — the
// split-brain interval the quorum + fencing machinery exists to make
// impossible. The oracle is pure bookkeeping (no sim events, no RNG), so
// attaching it never perturbs the deterministic schedule or the trace
// digest.
#ifndef SRC_ANALYSIS_LEASE_ORACLE_H_
#define SRC_ANALYSIS_LEASE_ORACLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/units.h"

namespace cxlpool::analysis {

class LeaseOracle {
 public:
  // Called by the home agent at the moment a forwarded write lands on the
  // device BAR. `epoch` is the epoch the op was admitted under; `client_id`
  // is the forwarded path's wire client id (one per (user host, device)
  // path, so distinct holders never alias).
  void RecordApply(PcieDeviceId device, uint64_t epoch, uint64_t client_id,
                   Nanos at);

  uint64_t applies() const { return applies_; }
  uint64_t violations() const { return violations_; }
  // Human-readable description of each dual-ownership interval (bounded).
  const std::vector<std::string>& violation_log() const { return log_; }

 private:
  struct PerDevice {
    uint64_t max_epoch = 0;
    Nanos max_epoch_first_apply = 0;  // when the newest epoch became active
    uint64_t last_client = 0;
  };

  std::map<PcieDeviceId, PerDevice> devices_;
  uint64_t applies_ = 0;
  uint64_t violations_ = 0;
  std::vector<std::string> log_;
};

}  // namespace cxlpool::analysis

#endif  // SRC_ANALYSIS_LEASE_ORACLE_H_
