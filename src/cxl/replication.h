// Highly-available pool memory (paper §5 "Highly-available CXL pods").
//
// MHD-based pods offer λ redundant paths: dense topologies place λ copies
// of critical state on distinct MHDs so that the failure of any device or
// link leaves the data reachable. This is the software half of that story:
// a ReplicatedRegion writes every replica (posted nt-stores, so the extra
// copies ride in parallel) and reads from the first healthy replica.
//
// Media RAS closes the loop: every full-line Publish records a per-64B-line
// checksum, and a background scrubber (ScrubLoop) sweeps the replicas,
// detecting poisoned or divergent lines and repairing them from a healthy
// copy. Scrub repairs are full-line nt-stores, which also clear the poison
// on the repaired media line (fresh ECC).
//
// Intended for control-plane state that must survive MHD failures — e.g.
// orchestrator metadata or channel bootstrap blocks — not for bulk I/O
// buffers (a lost RX buffer is retransmitted; lost orchestrator state is
// an outage).
#ifndef SRC_CXL_REPLICATION_H_
#define SRC_CXL_REPLICATION_H_

#include <vector>

#include "src/common/status.h"
#include "src/cxl/host_adapter.h"
#include "src/cxl/pool.h"
#include "src/obs/registry.h"
#include "src/sim/poll.h"

namespace cxlpool::cxl {

class ReplicatedRegion {
 public:
  // Allocates `size` bytes on `replicas` DISTINCT healthy MHDs. Fails if
  // the pool has fewer healthy MHDs than requested (λ cannot exceed the
  // pod's path redundancy).
  static Result<ReplicatedRegion> Create(CxlPool& pool, uint64_t size,
                                         int replicas);

  // Writes `in` at offset to EVERY replica. Posted writes overlap, so the
  // latency cost over a single write is one extra link serialization, not
  // λ× the commit latency. Fails only if ALL replicas are unreachable;
  // partially-failed writes count in stats().degraded_writes.
  sim::Task<Status> Publish(HostAdapter& host, uint64_t offset,
                            std::span<const std::byte> in);

  // Reads from the first reachable replica (primary first). Fresh
  // (invalidate+load) semantics, like any cross-host consume.
  sim::Task<Status> ReadFresh(HostAdapter& host, uint64_t offset,
                              std::span<std::byte> out);

  // --- Background scrubber ---
  // One full sweep: reads every 64B line from every replica, detects
  // poison (kDataLoss) and divergence (checksum / cross-replica mismatch),
  // and repairs bad replicas from a healthy copy via full-line nt-stores.
  // A line with no healthy copy at all counts as scrub_unrecoverable and
  // is retried on the next sweep (the outage may be transient).
  sim::Task<Status> ScrubOnce(HostAdapter& host);

  // Periodic sweep driver. Spawn with sim::Spawn; stops when `stop` fires.
  // The region must NOT be moved while the loop is running (the coroutine
  // holds `this`).
  sim::Task<> ScrubLoop(HostAdapter& host, Nanos interval,
                        sim::StopToken& stop);

  struct Stats {
    uint64_t publishes = 0;
    uint64_t degraded_writes = 0;  // >=1 replica was unreachable
    uint64_t failover_reads = 0;   // primary unreachable, replica served
    // Scrubber: lines swept (once per line per sweep), bad replica copies
    // repaired from a healthy one, and lines whose data was genuinely
    // unrecoverable (poison seen but no healthy copy matched). Transient
    // unavailability (link/MHD down, no poison) is not unrecoverable —
    // the next sweep retries.
    uint64_t lines_scrubbed = 0;
    uint64_t scrub_repairs = 0;
    uint64_t scrub_unrecoverable = 0;
    // Lines where no healthy replica matched the published checksum (or,
    // with no checksum on record, healthy replicas disagreed): every copy
    // diverged, e.g. both sides of a partition scribbled. The scrubber
    // converges them on a DETERMINISTIC winner — the lowest healthy
    // replica index — and flags the line here; it never byte-merges and
    // never resolves silently.
    uint64_t scrub_conflicts = 0;
  };

  // Exports the replication/scrubber stats as registry probes under
  // {"region": name} labels. Call once the region has reached its final
  // home: probes capture `this`, so the region must not move (nor be
  // destroyed) while the registry can still be snapshotted.
  void BindMetrics(obs::Registry* registry, const std::string& name);

  uint64_t size() const { return size_; }
  int replicas() const { return static_cast<int>(segments_.size()); }
  const PoolSegment& segment(int i) const { return segments_.at(i); }
  const Stats& stats() const { return stats_; }

 private:
  ReplicatedRegion() = default;

  // Number of 64B lines the scrubber sweeps (covers all of size_; the
  // allocator's 4 KiB rounding guarantees full-line access stays in
  // bounds even when size_ is not line-aligned).
  uint64_t LineCount() const;

  uint64_t size_ = 0;
  std::vector<PoolSegment> segments_;
  // Per-line FNV-1a checksum of the last fully-covering Publish; the
  // parallel `known` flag is false for lines never published whole (a
  // partial publish invalidates the line's checksum).
  std::vector<uint64_t> line_checksums_;
  std::vector<uint8_t> checksum_known_;
  Stats stats_;
};

}  // namespace cxlpool::cxl

#endif  // SRC_CXL_REPLICATION_H_
