// Highly-available pool memory (paper §5 "Highly-available CXL pods").
//
// MHD-based pods offer λ redundant paths: dense topologies place λ copies
// of critical state on distinct MHDs so that the failure of any device or
// link leaves the data reachable. This is the software half of that story:
// a ReplicatedRegion writes every replica (posted nt-stores, so the extra
// copies ride in parallel) and reads from the first healthy replica.
//
// Intended for control-plane state that must survive MHD failures — e.g.
// orchestrator metadata or channel bootstrap blocks — not for bulk I/O
// buffers (a lost RX buffer is retransmitted; lost orchestrator state is
// an outage).
#ifndef SRC_CXL_REPLICATION_H_
#define SRC_CXL_REPLICATION_H_

#include <vector>

#include "src/common/status.h"
#include "src/cxl/host_adapter.h"
#include "src/cxl/pool.h"

namespace cxlpool::cxl {

class ReplicatedRegion {
 public:
  // Allocates `size` bytes on `replicas` DISTINCT healthy MHDs. Fails if
  // the pool has fewer healthy MHDs than requested (λ cannot exceed the
  // pod's path redundancy).
  static Result<ReplicatedRegion> Create(CxlPool& pool, uint64_t size,
                                         int replicas);

  // Writes `in` at offset to EVERY replica. Posted writes overlap, so the
  // latency cost over a single write is one extra link serialization, not
  // λ× the commit latency. Fails only if ALL replicas are unreachable;
  // partially-failed writes count in stats().degraded_writes.
  sim::Task<Status> Publish(HostAdapter& host, uint64_t offset,
                            std::span<const std::byte> in);

  // Reads from the first reachable replica (primary first). Fresh
  // (invalidate+load) semantics, like any cross-host consume.
  sim::Task<Status> ReadFresh(HostAdapter& host, uint64_t offset,
                              std::span<std::byte> out);

  struct Stats {
    uint64_t publishes = 0;
    uint64_t degraded_writes = 0;  // >=1 replica was unreachable
    uint64_t failover_reads = 0;   // primary unreachable, replica served
  };

  uint64_t size() const { return size_; }
  int replicas() const { return static_cast<int>(segments_.size()); }
  const PoolSegment& segment(int i) const { return segments_.at(i); }
  const Stats& stats() const { return stats_; }

 private:
  ReplicatedRegion() = default;

  uint64_t size_ = 0;
  std::vector<PoolSegment> segments_;
  Stats stats_;
};

}  // namespace cxlpool::cxl

#endif  // SRC_CXL_REPLICATION_H_
