#include "src/cxl/coherence_observer.h"

namespace cxlpool::cxl {

std::string_view CoherenceOpName(CoherenceOp op) {
  switch (op) {
    case CoherenceOp::kLoadHit:
      return "load-hit";
    case CoherenceOp::kLoadMiss:
      return "load-miss";
    case CoherenceOp::kStoreHit:
      return "store-hit";
    case CoherenceOp::kStoreMiss:
      return "store-miss";
    case CoherenceOp::kStoreNt:
      return "nt-store";
    case CoherenceOp::kFlushWriteback:
      return "flush-writeback";
    case CoherenceOp::kInvalidateDrop:
      return "invalidate-drop";
    case CoherenceOp::kEvictClean:
      return "evict-clean";
    case CoherenceOp::kEvictWriteback:
      return "evict-writeback";
    case CoherenceOp::kDirtyLost:
      return "dirty-lost";
    case CoherenceOp::kDmaReadHit:
      return "dma-read-hit";
    case CoherenceOp::kDmaReadMiss:
      return "dma-read-miss";
    case CoherenceOp::kDmaWrite:
      return "dma-write";
  }
  return "unknown";
}

}  // namespace cxlpool::cxl
