#include "src/cxl/host_adapter.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <unordered_map>

#include "src/common/check.h"

namespace cxlpool::cxl {

namespace {
// Latency of a multi-line CXL transfer: one full load-to-use plus a small
// pipelined per-line increment (the CPU keeps several misses in flight).
Nanos PipelinedLatency(Nanos first, Nanos per_line, uint64_t lines) {
  if (lines == 0) {
    return 0;
  }
  return first + static_cast<Nanos>(lines - 1) * per_line;
}
}  // namespace

HostAdapter::HostAdapter(HostId id, sim::EventLoop& loop, mem::AddressMap& map,
                         CxlPool& pool, Config config)
    : id_(id),
      loop_(loop),
      map_(map),
      pool_(pool),
      config_(config),
      cache_(config.cache_lines),
      dram_bw_(config.timing.dram_bytes_per_ns),
      jitter_rng_(static_cast<uint64_t>(id.value()) * 7919 + 13) {}

Nanos HostAdapter::JitterCxl(Nanos base) {
  double sigma = config_.timing.cxl_jitter_sigma;
  if (sigma <= 0) {
    return base;
  }
  return static_cast<Nanos>(static_cast<double>(base) *
                            jitter_rng_.LogNormal(-sigma * sigma / 2, sigma));
}

void HostAdapter::AttachDram(uint64_t base, uint64_t size, double bytes_per_ns) {
  dram_base_ = base;
  dram_size_ = size;
  dram_bump_ = 0;
  dram_bw_.set_bytes_per_ns(bytes_per_ns);
}

Result<uint64_t> HostAdapter::AllocateDram(uint64_t size) {
  size = (size + kCachelineSize - 1) / kCachelineSize * kCachelineSize;
  if (dram_bump_ + size > dram_size_) {
    return ResourceExhausted("host " + std::to_string(id_.value()) +
                             " local DRAM exhausted");
  }
  uint64_t addr = dram_base_ + dram_bump_;
  dram_bump_ += size;
  return addr;
}

void HostAdapter::ConnectLink(CxlLink* link) {
  CXLPOOL_CHECK(link != nullptr && link->host() == id_);
  size_t idx = link->mhd().value();
  if (links_.size() <= idx) {
    links_.resize(idx + 1, nullptr);
  }
  links_[idx] = link;
}

CxlLink* HostAdapter::LinkTo(MhdId mhd) const {
  if (!mhd.valid() || mhd.value() >= links_.size()) {
    return nullptr;
  }
  return links_[mhd.value()];
}

void HostAdapter::SetCrashed(bool crashed) {
  if (crashed_ == crashed) {
    return;
  }
  crashed_ = crashed;
  for (auto& [key, fn] : crash_listeners_) {
    fn(crashed);
  }
}

void HostAdapter::AddCrashListener(const void* key, std::function<void(bool)> fn) {
  crash_listeners_.emplace_back(key, std::move(fn));
}

void HostAdapter::RemoveCrashListener(const void* key) {
  std::erase_if(crash_listeners_,
                [key](const auto& entry) { return entry.first == key; });
}

Result<const mem::Region*> HostAdapter::ResolveAccess(uint64_t addr, uint64_t len) {
  if (crashed_) {
    return Unavailable("host " + std::to_string(id_.value()) + " crashed");
  }
  ASSIGN_OR_RETURN(const mem::Region* region, map_.Resolve(addr, len));
  if (region->kind == mem::MemoryKind::kLocalDram && region->dram_host != id_) {
    return Status(StatusCode::kFailedPrecondition,
                  "host " + std::to_string(id_.value()) +
                      " cannot address host " +
                      std::to_string(region->dram_host.value()) + "'s DRAM");
  }
  return region;
}

Result<CxlLink*> HostAdapter::RouteCxl(uint64_t addr) {
  ASSIGN_OR_RETURN(MhdId mhd, pool_.RouteAddress(addr));
  if (pool_.mhd(mhd).failed()) {
    return Unavailable("MHD " + std::to_string(mhd.value()) + " failed");
  }
  CxlLink* link = LinkTo(mhd);
  if (link == nullptr) {
    return Unavailable("host " + std::to_string(id_.value()) +
                       " has no link to MHD " + std::to_string(mhd.value()));
  }
  if (!link->up()) {
    return Unavailable("CXL link " + std::to_string(link->id().value()) + " down");
  }
  return link;
}

void HostAdapter::WritebackEvicted(const mem::WriteBackCache::EvictedLine& ev) {
  if (!ev.dirty) {
    EmitCoherence(CoherenceOp::kEvictClean, ev.line_addr);
    return;
  }
  auto link = RouteCxl(ev.line_addr);
  if (!link.ok()) {
    ++stats_.lost_dirty_lines;
    EmitCoherence(CoherenceOp::kDirtyLost, ev.line_addr);
    return;
  }
  map_.WriteBytes(ev.line_addr, std::span<const std::byte>(ev.data));
  link.value()->to_device().Acquire(loop_.now(), kCachelineSize);
  EmitCoherence(CoherenceOp::kEvictWriteback, ev.line_addr);
}

sim::Task<Status> HostAdapter::WaitForWriteHorizon(uint64_t addr, uint64_t len) {
  // Same-address ordering for posted writes: a read of a line whose posted
  // write has not yet committed is served from the controller's write
  // buffer — it completes no earlier than the commit and then observes the
  // new data. Reads of unrelated lines are unaffected.
  Nanos commit = pool_.PendingCommitTime(addr, len);
  if (commit > loop_.now()) {
    co_await sim::WaitUntil(loop_, commit);
  }
  co_return OkStatus();
}

sim::Task<Status> HostAdapter::Load(uint64_t addr, std::span<std::byte> out) {
  ++stats_.loads;
  stats_.load_bytes += out.size();
  auto region_or = ResolveAccess(addr, out.size());
  if (!region_or.ok()) {
    co_return region_or.status();
  }
  const mem::Region* region = region_or.value();
  const CxlTiming& t = config_.timing;
  Nanos now = loop_.now();

  if (region->kind == mem::MemoryKind::kLocalDram) {
    // Coherent local memory: no staleness modeling, latency + channel bw.
    if (Status p = map_.CheckPoison(addr, out.size()); !p.ok()) {
      ++stats_.poisoned_reads;
      co_return p;
    }
    map_.ReadBytes(addr, out);
    Nanos done = dram_bw_.Acquire(now + t.dram_load, out.size());
    co_await sim::WaitUntil(loop_, done);
    co_return OkStatus();
  }

  CO_RETURN_IF_ERROR(co_await WaitForWriteHorizon(addr, out.size()));
  now = loop_.now();

  // CXL pool access, line by line through the cache.
  uint64_t first_line = CachelineFloor(addr);
  uint64_t n_lines = CachelinesTouched(addr, out.size());
  uint64_t hits = 0;
  uint64_t misses = 0;
  std::unordered_map<CxlLink*, uint64_t> miss_bytes;

  for (uint64_t i = 0; i < n_lines; ++i) {
    uint64_t laddr = first_line + i * kCachelineSize;
    // Byte range of this line that intersects [addr, addr+size).
    uint64_t lo = std::max(laddr, addr);
    uint64_t hi = std::min(laddr + kCachelineSize, addr + out.size());

    mem::WriteBackCache::Line* line = cache_.Find(laddr);
    if (line != nullptr) {
      ++hits;
      EmitCoherence(CoherenceOp::kLoadHit, laddr);
      std::memcpy(out.data() + (lo - addr), line->data.data() + (lo - laddr),
                  hi - lo);
      continue;
    }
    auto link_or = RouteCxl(laddr);
    if (!link_or.ok()) {
      co_return link_or.status();
    }
    // Uncorrectable media error: the MHD returns poison, not bytes. Cached
    // copies (hits above) legitimately still serve — the CPU has its own
    // good copy of the line.
    if (Status p = map_.CheckPoison(laddr, kCachelineSize); !p.ok()) {
      ++stats_.poisoned_reads;
      co_return p;
    }
    ++misses;
    miss_bytes[link_or.value()] += kCachelineSize;
    std::array<std::byte, kCachelineSize> buf;
    map_.ReadBytes(laddr, buf);
    std::memcpy(out.data() + (lo - addr), buf.data() + (lo - laddr), hi - lo);
    if (auto ev = cache_.Install(laddr, buf.data(), /*dirty=*/false)) {
      WritebackEvicted(*ev);
    }
    pool_.TrackCacher(laddr, id_);
    EmitCoherence(CoherenceOp::kLoadMiss, laddr);
  }

  Nanos done = now;
  if (hits > 0) {
    done += PipelinedLatency(t.cache_hit, 1, hits);
  }
  if (misses > 0) {
    // Misses on different links proceed in parallel; within a link the
    // CPU pipelines them at per_line_pipelined.
    Nanos latency_done = now;
    Nanos serial_done = now;
    for (auto& [link, bytes] : miss_bytes) {
      uint64_t lines = bytes / kCachelineSize;
      latency_done = std::max(
          latency_done,
          now + PipelinedLatency(JitterCxl(t.cxl_read), t.per_line_pipelined, lines));
      serial_done = std::max(serial_done, link->from_device().Acquire(now, bytes));
    }
    done = std::max({done, latency_done, serial_done + t.per_line_pipelined});
  }
  co_await sim::WaitUntil(loop_, done);
  co_return OkStatus();
}

sim::Task<Status> HostAdapter::Store(uint64_t addr, std::span<const std::byte> in) {
  ++stats_.stores;
  stats_.store_bytes += in.size();
  auto region_or = ResolveAccess(addr, in.size());
  if (!region_or.ok()) {
    co_return region_or.status();
  }
  const mem::Region* region = region_or.value();
  const CxlTiming& t = config_.timing;
  Nanos now = loop_.now();

  if (region->kind == mem::MemoryKind::kLocalDram) {
    map_.WriteBytes(addr, in);
    Nanos done = dram_bw_.Acquire(now + t.dram_store, in.size());
    co_await sim::WaitUntil(loop_, done);
    co_return OkStatus();
  }

  CO_RETURN_IF_ERROR(co_await WaitForWriteHorizon(addr, in.size()));
  now = loop_.now();

  // Write-back cached store: read-for-ownership on miss, dirty the line.
  // The pool backend is NOT updated — that is the cross-host hazard.
  uint64_t first_line = CachelineFloor(addr);
  uint64_t n_lines = CachelinesTouched(addr, in.size());
  uint64_t hits = 0;
  uint64_t misses = 0;
  std::unordered_map<CxlLink*, uint64_t> miss_bytes;

  for (uint64_t i = 0; i < n_lines; ++i) {
    uint64_t laddr = first_line + i * kCachelineSize;
    uint64_t lo = std::max(laddr, addr);
    uint64_t hi = std::min(laddr + kCachelineSize, addr + in.size());

    mem::WriteBackCache::Line* line = cache_.Find(laddr);
    if (line != nullptr) {
      ++hits;
      EmitCoherence(CoherenceOp::kStoreHit, laddr);
      std::memcpy(line->data.data() + (lo - laddr), in.data() + (lo - addr), hi - lo);
      line->dirty = true;
      continue;
    }
    auto link_or = RouteCxl(laddr);
    if (!link_or.ok()) {
      co_return link_or.status();
    }
    // The read-for-ownership fetch pulls the line from media, so a
    // poisoned line fails the cached store too (a full-line StoreNt is the
    // way to overwrite — and thereby heal — poison).
    if (Status p = map_.CheckPoison(laddr, kCachelineSize); !p.ok()) {
      ++stats_.poisoned_reads;
      co_return p;
    }
    ++misses;
    miss_bytes[link_or.value()] += kCachelineSize;
    std::array<std::byte, kCachelineSize> buf;
    map_.ReadBytes(laddr, buf);  // RFO fetch
    std::memcpy(buf.data() + (lo - laddr), in.data() + (lo - addr), hi - lo);
    if (auto ev = cache_.Install(laddr, buf.data(), /*dirty=*/true)) {
      WritebackEvicted(*ev);
    }
    pool_.TrackCacher(laddr, id_);
    EmitCoherence(CoherenceOp::kStoreMiss, laddr);
  }

  Nanos done = now;
  if (hits > 0) {
    done += PipelinedLatency(t.cache_hit, 1, hits);
  }
  if (misses > 0) {
    // Misses on different links proceed in parallel; within a link the
    // CPU pipelines them at per_line_pipelined.
    Nanos latency_done = now;
    Nanos serial_done = now;
    for (auto& [link, bytes] : miss_bytes) {
      uint64_t lines = bytes / kCachelineSize;
      latency_done = std::max(
          latency_done,
          now + PipelinedLatency(JitterCxl(t.cxl_read), t.per_line_pipelined, lines));
      serial_done = std::max(serial_done, link->from_device().Acquire(now, bytes));
    }
    done = std::max({done, latency_done, serial_done + t.per_line_pipelined});
  }
  co_await sim::WaitUntil(loop_, done);
  co_return OkStatus();
}

sim::Task<Status> HostAdapter::StoreNt(uint64_t addr, std::span<const std::byte> in) {
  ++stats_.nt_stores;
  stats_.nt_store_bytes += in.size();
  auto region_or = ResolveAccess(addr, in.size());
  if (!region_or.ok()) {
    co_return region_or.status();
  }
  const mem::Region* region = region_or.value();
  const CxlTiming& t = config_.timing;
  Nanos now = loop_.now();

  if (region->kind == mem::MemoryKind::kLocalDram) {
    // Non-temporal store to local DRAM: same visibility, slightly cheaper
    // than a cached store followed by eviction; model as plain DRAM store.
    map_.WriteBytes(addr, in);
    Nanos done = dram_bw_.Acquire(now + t.dram_store, in.size());
    co_await sim::WaitUntil(loop_, done);
    co_return OkStatus();
  }

  // Health-check every touched line's route before mutating anything.
  uint64_t first_line = CachelineFloor(addr);
  uint64_t n_lines = CachelinesTouched(addr, in.size());
  std::unordered_map<CxlLink*, uint64_t> bytes_per_link;
  for (uint64_t i = 0; i < n_lines; ++i) {
    uint64_t laddr = first_line + i * kCachelineSize;
    auto link_or = RouteCxl(laddr);
    if (!link_or.ok()) {
      co_return link_or.status();
    }
    bytes_per_link[link_or.value()] += kCachelineSize;
  }

  // Drop any cached copies (an nt-store over a dirty line discards the
  // cached bytes in favour of the streamed ones).
  for (uint64_t i = 0; i < n_lines; ++i) {
    uint64_t laddr = first_line + i * kCachelineSize;
    if (auto ev = cache_.Remove(laddr); ev && ev->dirty) {
      ++stats_.lost_dirty_lines;
      EmitCoherence(CoherenceOp::kDirtyLost, laddr);
    }
  }

  Nanos serial_done = now;
  for (auto& [link, bytes] : bytes_per_link) {
    serial_done = std::max(serial_done, link->to_device().Acquire(now, bytes));
  }
  // Posted-write semantics: the CPU only drains its write-combining buffer
  // onto the link (serial_done); the bytes commit to pool media one write
  // latency later. Same-line readers in the meantime are held to the
  // commit time (controller write buffer); other hosts simply cannot
  // observe the bytes before the commit.
  Nanos visible_at = pool_.RecordPendingCommit(
      addr, in.size(), serial_done + JitterCxl(t.cxl_write), now);
  // CXL 3.0 BI emulation: the device invalidates remote cached copies;
  // the writer pays one snoop round.
  int snoops = pool_.BackInvalidate(addr, in.size(), id_);
  loop_.ScheduleAt(visible_at,
                   [this, addr, data = std::vector<std::byte>(in.begin(), in.end())] {
                     map_.WriteBytes(addr, data);
                   });
  for (uint64_t i = 0; i < n_lines; ++i) {
    EmitCoherence(CoherenceOp::kStoreNt, first_line + i * kCachelineSize);
  }
  co_await sim::WaitUntil(loop_, serial_done + (snoops > 0 ? t.bi_snoop : 0));
  co_return OkStatus();
}

sim::Task<Status> HostAdapter::Flush(uint64_t addr, uint64_t len) {
  ++stats_.flushes;
  return FlushImpl(addr, len, /*invalidate=*/false);
}

sim::Task<Status> HostAdapter::Invalidate(uint64_t addr, uint64_t len) {
  ++stats_.invalidates;
  return FlushImpl(addr, len, /*invalidate=*/true);
}

sim::Task<Status> HostAdapter::FlushImpl(uint64_t addr, uint64_t len, bool invalidate) {
  auto region_or = ResolveAccess(addr, len);
  if (!region_or.ok()) {
    co_return region_or.status();
  }
  if (region_or.value()->kind == mem::MemoryKind::kLocalDram) {
    co_return OkStatus();  // local DRAM is coherent; flush is a no-op
  }
  const CxlTiming& t = config_.timing;
  Nanos now = loop_.now();

  uint64_t first_line = CachelineFloor(addr);
  uint64_t n_lines = CachelinesTouched(addr, len);
  std::unordered_map<CxlLink*, uint64_t> dirty_bytes;
  std::vector<mem::WriteBackCache::EvictedLine> writebacks;

  for (uint64_t i = 0; i < n_lines; ++i) {
    uint64_t laddr = first_line + i * kCachelineSize;
    auto ev = cache_.Remove(laddr);
    if (!ev) {
      continue;
    }
    if (!ev->dirty) {
      EmitCoherence(CoherenceOp::kInvalidateDrop, laddr);
      continue;
    }
    ++stats_.flushed_dirty_lines;
    auto link_or = RouteCxl(laddr);
    if (!link_or.ok()) {
      // This line — and every dirty line already pulled out of the cache
      // for this flush — has lost its only copy: nothing writes it back.
      ++stats_.lost_dirty_lines;
      EmitCoherence(CoherenceOp::kDirtyLost, laddr);
      for (const auto& dropped : writebacks) {
        ++stats_.lost_dirty_lines;
        EmitCoherence(CoherenceOp::kDirtyLost, dropped.line_addr);
      }
      co_return link_or.status();
    }
    dirty_bytes[link_or.value()] += kCachelineSize;
    writebacks.push_back(*ev);
  }

  Nanos issue_cost = static_cast<Nanos>(n_lines) * (invalidate ? t.invalidate : t.flush_issue);
  Nanos done = now + issue_cost;
  if (!dirty_bytes.empty()) {
    Nanos serial_done = now;
    for (auto& [link, bytes] : dirty_bytes) {
      serial_done = std::max(serial_done, link->to_device().Acquire(now, bytes));
    }
    done = std::max(done, serial_done + JitterCxl(t.cxl_write));
  }
  co_await sim::WaitUntil(loop_, done);
  // Dirty data becomes pool-visible when the writeback completes.
  for (const auto& ev : writebacks) {
    map_.WriteBytes(ev.line_addr, std::span<const std::byte>(ev.data));
    EmitCoherence(CoherenceOp::kFlushWriteback, ev.line_addr);
  }
  co_return OkStatus();
}

sim::Task<Status> HostAdapter::DmaRead(uint64_t addr, std::span<std::byte> out) {
  ++stats_.dma_reads;
  auto region_or = ResolveAccess(addr, out.size());
  if (!region_or.ok()) {
    co_return region_or.status();
  }
  const mem::Region* region = region_or.value();
  const CxlTiming& t = config_.timing;
  Nanos now = loop_.now();

  if (region->kind == mem::MemoryKind::kLocalDram) {
    if (Status p = map_.CheckPoison(addr, out.size()); !p.ok()) {
      ++stats_.poisoned_reads;
      co_return p;
    }
    map_.ReadBytes(addr, out);
    Nanos done = dram_bw_.Acquire(now + t.dram_load, out.size());
    co_await sim::WaitUntil(loop_, done);
    co_return OkStatus();
  }

  CO_RETURN_IF_ERROR(co_await WaitForWriteHorizon(addr, out.size()));
  now = loop_.now();

  // Inbound DMA through this host's root complex snoops THIS host's cache
  // (local I/O is coherent) but goes to pool media otherwise. Other hosts'
  // caches are never snooped.
  uint64_t first_line = CachelineFloor(addr);
  uint64_t n_lines = CachelinesTouched(addr, out.size());
  std::unordered_map<CxlLink*, uint64_t> bytes_per_link;

  for (uint64_t i = 0; i < n_lines; ++i) {
    uint64_t laddr = first_line + i * kCachelineSize;
    uint64_t lo = std::max(laddr, addr);
    uint64_t hi = std::min(laddr + kCachelineSize, addr + out.size());
    auto link_or = RouteCxl(laddr);
    if (!link_or.ok()) {
      co_return link_or.status();
    }
    bytes_per_link[link_or.value()] += kCachelineSize;
    // Snoop own cache (no LRU/stat churn — this is the device, not the CPU).
    if (const mem::WriteBackCache::Line* line = cache_.Peek(laddr)) {
      EmitCoherence(CoherenceOp::kDmaReadHit, laddr);
      std::memcpy(out.data() + (lo - addr), line->data.data() + (lo - laddr), hi - lo);
    } else {
      // Poison travels to the device as a DMA completion error.
      if (Status p = map_.CheckPoison(laddr, kCachelineSize); !p.ok()) {
        ++stats_.poisoned_reads;
        co_return p;
      }
      EmitCoherence(CoherenceOp::kDmaReadMiss, laddr);
      std::array<std::byte, kCachelineSize> buf;
      map_.ReadBytes(laddr, buf);
      std::memcpy(out.data() + (lo - addr), buf.data() + (lo - laddr), hi - lo);
    }
  }

  Nanos latency_done = now;
  Nanos serial_done = now;
  for (auto& [link, bytes] : bytes_per_link) {
    uint64_t lines = bytes / kCachelineSize;
    latency_done = std::max(
        latency_done,
        now + PipelinedLatency(JitterCxl(t.cxl_read), t.per_line_pipelined, lines));
    serial_done = std::max(serial_done, link->from_device().Acquire(now, bytes));
  }
  co_await sim::WaitUntil(loop_, std::max(latency_done, serial_done));
  co_return OkStatus();
}

sim::Task<Status> HostAdapter::DmaWrite(uint64_t addr, std::span<const std::byte> in) {
  ++stats_.dma_writes;
  auto region_or = ResolveAccess(addr, in.size());
  if (!region_or.ok()) {
    co_return region_or.status();
  }
  const mem::Region* region = region_or.value();
  const CxlTiming& t = config_.timing;
  Nanos now = loop_.now();

  if (region->kind == mem::MemoryKind::kLocalDram) {
    map_.WriteBytes(addr, in);
    Nanos done = dram_bw_.Acquire(now + t.dram_store, in.size());
    co_await sim::WaitUntil(loop_, done);
    co_return OkStatus();
  }

  uint64_t first_line = CachelineFloor(addr);
  uint64_t n_lines = CachelinesTouched(addr, in.size());
  std::unordered_map<CxlLink*, uint64_t> bytes_per_link;
  for (uint64_t i = 0; i < n_lines; ++i) {
    uint64_t laddr = first_line + i * kCachelineSize;
    auto link_or = RouteCxl(laddr);
    if (!link_or.ok()) {
      co_return link_or.status();
    }
    bytes_per_link[link_or.value()] += kCachelineSize;
  }

  // Invalidate this host's cached copies (root-complex snoop). Cached
  // copies on OTHER hosts go stale — the cross-host hazard.
  for (uint64_t i = 0; i < n_lines; ++i) {
    uint64_t laddr = first_line + i * kCachelineSize;
    if (auto ev = cache_.Remove(laddr)) {
      EmitCoherence(ev->dirty ? CoherenceOp::kDirtyLost
                              : CoherenceOp::kInvalidateDrop,
                    laddr);
    }
  }

  Nanos serial_done = now;
  for (auto& [link, bytes] : bytes_per_link) {
    serial_done = std::max(serial_done, link->to_device().Acquire(now, bytes));
  }
  // Device DMA writes are posted like nt-stores: the engine moves on after
  // link serialization; media commit follows one write latency later and
  // same-line readers are held to the commit time.
  Nanos visible_at = pool_.RecordPendingCommit(
      addr, in.size(), serial_done + JitterCxl(t.cxl_write), now);
  int snoops = pool_.BackInvalidate(addr, in.size(), id_);
  loop_.ScheduleAt(visible_at,
                   [this, addr, data = std::vector<std::byte>(in.begin(), in.end())] {
                     map_.WriteBytes(addr, data);
                   });
  for (uint64_t i = 0; i < n_lines; ++i) {
    EmitCoherence(CoherenceOp::kDmaWrite, first_line + i * kCachelineSize);
  }
  co_await sim::WaitUntil(loop_, serial_done + (snoops > 0 ? t.bi_snoop : 0));
  co_return OkStatus();
}

void HostAdapter::PeekBackend(uint64_t addr, std::span<std::byte> out) const {
  map_.ReadBytes(addr, out);
}

void HostAdapter::PokeBackend(uint64_t addr, std::span<const std::byte> in) {
  map_.WriteBytes(addr, in);
}

}  // namespace cxlpool::cxl
