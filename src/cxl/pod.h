// CxlPod: a rack-scale unit of hosts connected to a CXL memory pool
// (paper §3). Builds the full fabric: per-host local DRAM windows, MHDs,
// one CXL link per (host, MHD) pair — the dense MHD topology in which every
// host reaches every MHD, giving λ = #MHDs redundant capacity paths — and
// the shared address map everything resolves through.
#ifndef SRC_CXL_POD_H_
#define SRC_CXL_POD_H_

#include <memory>
#include <vector>

#include "src/common/ids.h"
#include "src/cxl/host_adapter.h"
#include "src/cxl/link.h"
#include "src/cxl/pool.h"
#include "src/mem/address_map.h"
#include "src/mem/backend.h"
#include "src/netsim/fault_plane.h"
#include "src/sim/event_loop.h"

namespace cxlpool::cxl {

struct CxlPodConfig {
  int num_hosts = 4;
  int num_mhds = 2;
  uint64_t mhd_capacity = 64 * kMiB;
  uint64_t dram_per_host = 64 * kMiB;
  LinkSpec link;  // default PCIe-5.0 x8 per (host, MHD) link
  CxlTiming timing;
  size_t cache_lines_per_host = 128 * 1024;  // 8 MiB of cached CXL lines
  // Seed for the message-fabric fault plane's per-frame loss draws.
  uint64_t fault_plane_seed = 0x9E3779B97F4A7C15ULL;
};

class CxlPod {
 public:
  CxlPod(sim::EventLoop& loop, const CxlPodConfig& config);
  CxlPod(const CxlPod&) = delete;
  CxlPod& operator=(const CxlPod&) = delete;

  sim::EventLoop& loop() { return loop_; }
  mem::AddressMap& address_map() { return map_; }
  CxlPool& pool() { return *pool_; }
  const CxlPodConfig& config() const { return config_; }

  int host_count() const { return static_cast<int>(hosts_.size()); }
  HostAdapter& host(int i) { return *hosts_.at(i); }
  HostAdapter& host(HostId id) { return *hosts_.at(id.value()); }

  // The link host `h` uses to reach MHD `m`, or nullptr.
  CxlLink* link(HostId h, MhdId m) { return host(h).LinkTo(m); }

  // --- Failure injection (E6 and topology tests) ---
  void FailMhd(MhdId m) { pool_->mhd(m).set_failed(true); }
  void RepairMhd(MhdId m) { pool_->mhd(m).set_failed(false); }
  void FailLink(HostId h, MhdId m);
  void RepairLink(HostId h, MhdId m);

  // Host crash (§5 fault model): severs every CXL link of `h`, marks the
  // adapter crashed (all its memory traffic fails), and fails every PCIe
  // device attached to it (via the adapter's crash listeners). The host's
  // agent loops go dormant and its RPC servers abort; the orchestrator's
  // liveness sweep notices the missing heartbeats. RepairHost reverses all
  // of it — the rebooted host re-registers through its next report.
  void FailHost(HostId h);
  void RepairHost(HostId h);
  bool HostCrashed(HostId h) const { return hosts_.at(h.value())->crashed(); }

  // Message-fabric partition/loss model (ISSUE 9). Every msg channel
  // created over this pod's hosts consults it per consumed frame:
  // FaultPlane::Cut / Partition / SetLossy sever or degrade host-to-host
  // messaging (reports, control RPCs, forwarded MMIO, peer probes) while
  // leaving raw pool memory traffic intact — the "partitioned but alive"
  // regime a probe-only liveness sweep misclassifies as death.
  netsim::FaultPlane& fault_plane() { return fault_plane_; }

  // Media RAS injection (§5 gray failures): marks the 64B line backing pool
  // address `addr` poisoned — subsequent loads / DMA reads of the line
  // return kDataLoss until a full-line write (e.g. scrubber repair) clears
  // it. CHECK-fails on unmapped addresses (injector bug, not a sim event).
  void PoisonLine(uint64_t addr);
  void ClearPoison(uint64_t addr);
  bool LinePoisoned(uint64_t addr) const {
    return map_.RangePoisoned(addr, 1);
  }
  // Poisoned lines across all MHD media, for end-of-storm assertions.
  size_t PoisonedLineCount() const;

  // Number of healthy, distinct paths from host `h` into pool capacity
  // (healthy links to healthy MHDs) — the λ redundancy of §5.
  int HealthyPaths(HostId h) const;

  // --- Coherence-protocol checking (opt-in; see analysis::CoherenceChecker) ---
  // Attaches `obs` to every host adapter (nullptr detaches). With no
  // observer the instrumentation costs one branch per touched line.
  void SetCoherenceObserver(CoherenceObserver* obs);

  // Dirty pool lines destroyed without a writeback, summed over all hosts.
  // Nonzero on a fault-free run means the code under test broke the
  // software coherence protocol — benches and examples assert zero.
  uint64_t TotalLostDirtyLines() const;

 private:
  sim::EventLoop& loop_;
  CxlPodConfig config_;
  mem::AddressMap map_;
  std::unique_ptr<CxlPool> pool_;
  std::vector<std::unique_ptr<mem::MemoryBackend>> dram_;
  std::vector<std::unique_ptr<HostAdapter>> hosts_;
  std::vector<std::unique_ptr<CxlLink>> links_;
  netsim::FaultPlane fault_plane_;
};

}  // namespace cxlpool::cxl

#endif  // SRC_CXL_POD_H_
