#include "src/cxl/pod.h"

#include <string>

#include "src/common/check.h"

namespace cxlpool::cxl {

CxlPod::CxlPod(sim::EventLoop& loop, const CxlPodConfig& config)
    : loop_(loop), config_(config), fault_plane_(config.fault_plane_seed) {
  CXLPOOL_CHECK(config.num_hosts > 0);
  CXLPOOL_CHECK(config.num_mhds > 0);
  CXLPOOL_CHECK(config.num_hosts <= MultiHeadedDevice::kMaxPorts);
  CXLPOOL_CHECK(config.dram_per_host <= kDramWindowStride);

  pool_ = std::make_unique<CxlPool>(map_);
  for (int m = 0; m < config.num_mhds; ++m) {
    pool_->AddMhd(config.mhd_capacity);
  }

  uint32_t next_link = 0;
  for (int h = 0; h < config.num_hosts; ++h) {
    HostId host_id(h);
    HostAdapter::Config hc;
    hc.timing = config.timing;
    hc.cache_lines = config.cache_lines_per_host;
    auto adapter = std::make_unique<HostAdapter>(host_id, loop_, map_, *pool_, hc);

    // Local DRAM window.
    auto dram = std::make_unique<mem::MemoryBackend>(
        "host" + std::to_string(h) + "-dram", config.dram_per_host);
    mem::Region region;
    region.base = kDramWindowBase + static_cast<uint64_t>(h) * kDramWindowStride;
    region.size = config.dram_per_host;
    region.kind = mem::MemoryKind::kLocalDram;
    region.dram_host = host_id;
    region.backend = dram.get();
    region.backend_offset = 0;
    CXLPOOL_CHECK_OK(map_.Register(region));
    adapter->AttachDram(region.base, region.size, config.timing.dram_bytes_per_ns);
    adapter->set_fault_plane(&fault_plane_);
    dram_.push_back(std::move(dram));

    // One CXL link to every MHD (dense topology).
    for (int m = 0; m < config.num_mhds; ++m) {
      auto link = std::make_unique<CxlLink>(CxlLinkId(next_link++), host_id,
                                            MhdId(m), config.link);
      adapter->ConnectLink(link.get());
      links_.push_back(std::move(link));
    }
    hosts_.push_back(std::move(adapter));
  }
  // Wire the Back-Invalidate snoop filter (inert until enabled on the
  // pool; see CxlPool::set_back_invalidate).
  for (auto& h : hosts_) {
    pool_->RegisterSnoopTarget(h->id(), &h->cache());
  }
}

void CxlPod::FailLink(HostId h, MhdId m) {
  CxlLink* l = link(h, m);
  CXLPOOL_CHECK(l != nullptr);
  l->set_up(false);
}

void CxlPod::RepairLink(HostId h, MhdId m) {
  CxlLink* l = link(h, m);
  CXLPOOL_CHECK(l != nullptr);
  l->set_up(true);
}

void CxlPod::FailHost(HostId h) {
  HostAdapter& adapter = *hosts_.at(h.value());
  if (adapter.crashed()) {
    return;
  }
  for (int m = 0; m < config_.num_mhds; ++m) {
    if (CxlLink* l = adapter.LinkTo(MhdId(m))) {
      l->set_up(false);
    }
  }
  adapter.SetCrashed(true);
}

void CxlPod::RepairHost(HostId h) {
  HostAdapter& adapter = *hosts_.at(h.value());
  if (!adapter.crashed()) {
    return;
  }
  // Links come back before the devices so repaired devices find a live
  // fabric immediately.
  for (int m = 0; m < config_.num_mhds; ++m) {
    if (CxlLink* l = adapter.LinkTo(MhdId(m))) {
      l->set_up(true);
    }
  }
  adapter.SetCrashed(false);
}

void CxlPod::PoisonLine(uint64_t addr) {
  CXLPOOL_CHECK_OK(map_.PoisonLine(addr));
}

void CxlPod::ClearPoison(uint64_t addr) {
  CXLPOOL_CHECK_OK(map_.ClearPoison(addr));
}

size_t CxlPod::PoisonedLineCount() const { return pool_->PoisonedLineCount(); }

void CxlPod::SetCoherenceObserver(CoherenceObserver* obs) {
  for (auto& host : hosts_) {
    host->set_coherence_observer(obs);
  }
}

uint64_t CxlPod::TotalLostDirtyLines() const {
  uint64_t total = 0;
  for (const auto& host : hosts_) {
    total += host->stats().lost_dirty_lines;
  }
  return total;
}

int CxlPod::HealthyPaths(HostId h) const {
  int paths = 0;
  const HostAdapter& adapter = *hosts_.at(h.value());
  for (size_t m = 0; m < pool_->mhd_count(); ++m) {
    MhdId mhd(static_cast<uint32_t>(m));
    if (pool_->mhd(mhd).failed()) {
      continue;
    }
    CxlLink* l = adapter.LinkTo(mhd);
    if (l != nullptr && l->up()) {
      ++paths;
    }
  }
  return paths;
}

}  // namespace cxlpool::cxl
