// Calibrated timing/bandwidth parameters for the CXL pod simulation.
//
// Sources (all cited by the paper):
//  - Idle CXL load-to-use ≈ 2.15x local DDR5 on a Leo controller, 2-3x in
//    general [Das Sharma et al., CSUR'24; Sun et al., MICRO'23] (paper §3).
//    MHD-based pools sit at the upper end of that band; we model ~2.8x.
//  - A CXL 2.0 / PCIe-5.0 x8 link sustains ≈30 GB/s at a 2:1 read:write
//    mix, matching one DDR5-4800 channel (paper §3).
//  - CPUs interleave at 256 B granularity across CXL links; Granite Rapids
//    class parts expose 64 CXL lanes/socket ≈ 240 GB/s (paper §3).
//
// All constants are plain data so experiments can perturb them (sensitivity
// sweeps in bench/).
#ifndef SRC_CXL_PARAMS_H_
#define SRC_CXL_PARAMS_H_

#include <cstdint>

#include "src/common/units.h"

namespace cxlpool::cxl {

struct CxlTiming {
  // Local DDR5: idle load-to-use and (store-buffer absorbed) store cost.
  Nanos dram_load = 110;
  Nanos dram_store = 15;
  double dram_bytes_per_ns = 30.0;  // one DDR5-4800 channel, effective

  // On-package cache hit for a line of CXL-mapped memory.
  Nanos cache_hit = 3;

  // CXL pool media access through one MHD port (link + controller + media).
  // read/dram_load ≈ 2.8x, inside the paper's 2-3x band.
  Nanos cxl_read = 320;
  // Posted write visibility latency (when a subsequent reader on another
  // port can observe the data).
  Nanos cxl_write = 230;

  // Issue overhead of a clwb/clflush instruction (before the writeback
  // itself, which costs cxl_write).
  Nanos flush_issue = 20;
  // Dropping a clean line so the next load refetches (self-invalidate).
  Nanos invalidate = 5;

  // One Back-Invalidate snoop round (CXL 3.0 BI emulation; §3): added to a
  // pool write when remote cached copies must be invalidated.
  Nanos bi_snoop = 100;

  // Per-cacheline pipeline overhead charged on multi-line transfers (the
  // CPU sustains several outstanding misses; transfers are not fully
  // latency-serialized).
  Nanos per_line_pipelined = 2;

  // Multiplicative lognormal jitter on CXL access latency (controller
  // arbitration, media refresh, link retraining noise). Gives latency
  // distributions their tails (Figure 4); 0 disables.
  double cxl_jitter_sigma = 0.12;
};

// A CXL link is built on the PCIe physical layer: gen + lane count define
// its bandwidth. Effective per-lane rate for PCIe 5.0 after encoding and
// protocol overhead ≈ 3.75 GB/s (x8 ≈ 30 GB/s, as in the paper).
struct LinkSpec {
  int pcie_gen = 5;
  int lanes = 8;

  double BytesPerNanos() const {
    // Per-lane effective GB/s by generation (approximate, full duplex per
    // direction): gen4 = 1.97, gen5 = 3.75, gen6 = 7.5.
    double per_lane = 3.75;
    if (pcie_gen == 4) {
      per_lane = 1.97;
    } else if (pcie_gen == 6) {
      per_lane = 7.5;
    }
    return per_lane * lanes;
  }
};

// Interleave granule used by CPUs across CXL links (paper §3).
inline constexpr uint64_t kInterleaveGranule = 256;

// Address-space layout of the simulated pod: each host's local DRAM gets a
// fixed window, the pool starts above all of them.
inline constexpr uint64_t kDramWindowBase = 0x0000'0001'0000'0000ULL;  // 4 GiB
inline constexpr uint64_t kDramWindowStride = 0x0000'0001'0000'0000ULL;
inline constexpr uint64_t kPoolWindowBase = 0x0000'0100'0000'0000ULL;  // 1 TiB

}  // namespace cxlpool::cxl

#endif  // SRC_CXL_PARAMS_H_
