// Line-granular instrumentation hooks for the software coherence protocol.
//
// When an observer is attached to a HostAdapter (see CxlPod and
// analysis::CoherenceChecker), every CPU- and DMA-side operation on CXL
// pool memory emits one event per touched 64 B line, stamped with
// simulated time. Local-DRAM accesses emit nothing: that memory is
// hardware-coherent and carries no protocol obligations. With no observer
// attached the hooks cost a single null check per line — the checker is
// strictly opt-in per pod.
#ifndef SRC_CXL_COHERENCE_OBSERVER_H_
#define SRC_CXL_COHERENCE_OBSERVER_H_

#include <cstdint>
#include <string_view>

#include "src/common/ids.h"
#include "src/common/units.h"

namespace cxlpool::cxl {

// What happened to one pool line. "Publish" ops make bytes visible to
// other coherence domains; "consume" ops refresh or drop a private copy.
enum class CoherenceOp : uint8_t {
  kLoadHit,          // cached load served from this host's private copy
  kLoadMiss,         // load fetched from the pool and cached
  kStoreHit,         // cached write-back store dirtied an existing copy
  kStoreMiss,        // RFO fetch + dirty (unpublished write begins)
  kStoreNt,          // non-temporal store: publish to the pool
  kFlushWriteback,   // Flush/Invalidate wrote a dirty line back (publish)
  kInvalidateDrop,   // clean private copy dropped (next load refetches)
  kEvictClean,       // capacity eviction of a clean copy
  kEvictWriteback,   // capacity eviction wrote a dirty line back (publish)
  kDirtyLost,        // dirty (unpublished) copy destroyed without writeback
  kDmaReadHit,       // device DMA read served from this host's dirty cache
  kDmaReadMiss,      // device DMA read served from pool media
  kDmaWrite,         // device DMA write: publish via this host's root complex
};

std::string_view CoherenceOpName(CoherenceOp op);

struct CoherenceEvent {
  HostId host;        // the coherence domain issuing the access
  CoherenceOp op;
  uint64_t line_addr; // 64 B aligned pool address
  Nanos time;         // simulated time of the access
};

class CoherenceObserver {
 public:
  virtual ~CoherenceObserver() = default;

  // One pool line was touched. Called synchronously from the adapter.
  virtual void OnLineEvent(const CoherenceEvent& ev) = 0;

  // `host` announced [addr, addr+len) ready for other agents — a doorbell
  // ring, RPC send, or ownership transfer that references the region. At
  // this moment the region must contain no unpublished (dirty cached)
  // lines belonging to `host`.
  virtual void OnHandoff(HostId host, uint64_t addr, uint64_t len,
                         std::string_view what, Nanos time) = 0;
};

}  // namespace cxlpool::cxl

#endif  // SRC_CXL_COHERENCE_OBSERVER_H_
