#include "src/cxl/pool.h"

#include <algorithm>
#include <string>

#include "src/common/check.h"

namespace cxlpool::cxl {

namespace {
constexpr uint64_t kSegmentAlign = 4 * kKiB;

uint64_t RoundUp(uint64_t v, uint64_t align) { return (v + align - 1) / align * align; }
}  // namespace

MhdId CxlPool::AddMhd(uint64_t capacity_bytes) {
  MhdId id(static_cast<uint32_t>(mhds_.size()));
  mhds_.push_back(std::make_unique<MultiHeadedDevice>(id, capacity_bytes));
  mhd_used_.push_back(0);
  mhd_bump_.push_back(0);
  return id;
}

MultiHeadedDevice& CxlPool::mhd(MhdId id) {
  CXLPOOL_CHECK(id.valid() && id.value() < mhds_.size());
  return *mhds_[id.value()];
}

const MultiHeadedDevice& CxlPool::mhd(MhdId id) const {
  CXLPOOL_CHECK(id.valid() && id.value() < mhds_.size());
  return *mhds_[id.value()];
}

Result<PoolSegment> CxlPool::Allocate(uint64_t size, MhdId preferred) {
  if (size == 0) {
    return InvalidArgument("zero-size pool allocation");
  }
  size = RoundUp(size, kSegmentAlign);

  MhdId target = preferred;
  if (!target.valid()) {
    // Least-utilized healthy MHD with room.
    double best = 2.0;
    for (size_t i = 0; i < mhds_.size(); ++i) {
      if (mhds_[i]->failed()) {
        continue;
      }
      uint64_t cap = mhds_[i]->capacity();
      if (mhd_bump_[i] + size > cap) {
        continue;
      }
      double util = static_cast<double>(mhd_used_[i]) / static_cast<double>(cap);
      if (util < best) {
        best = util;
        target = MhdId(static_cast<uint32_t>(i));
      }
    }
    if (!target.valid()) {
      return ResourceExhausted("no MHD can fit " + std::to_string(size) + " bytes");
    }
  } else {
    if (target.value() >= mhds_.size()) {
      return NotFound("unknown MHD");
    }
    if (mhds_[target.value()]->failed()) {
      return Unavailable("MHD " + std::to_string(target.value()) + " failed");
    }
    if (mhd_bump_[target.value()] + size > mhds_[target.value()]->capacity()) {
      return ResourceExhausted("MHD " + std::to_string(target.value()) + " full");
    }
  }

  uint32_t m = target.value();
  PoolSegment seg;
  seg.base = next_base_;
  seg.size = size;
  seg.mhds = {target};
  next_base_ += size;

  mem::Region region;
  region.base = seg.base;
  region.size = seg.size;
  region.kind = mem::MemoryKind::kCxlPool;
  region.mhd = target;
  region.backend = &mhds_[m]->media();
  region.backend_offset = mhd_bump_[m];
  RETURN_IF_ERROR(map_.Register(region));

  mhd_bump_[m] += size;
  mhd_used_[m] += size;
  segments_.emplace(seg.base, SegmentInfo{seg, false});
  return seg;
}

Result<PoolSegment> CxlPool::AllocateInterleaved(uint64_t size,
                                                 std::vector<MhdId> mhds) {
  if (mhds.size() < 2) {
    return InvalidArgument("interleaved allocation needs >= 2 MHDs");
  }
  for (MhdId id : mhds) {
    if (!id.valid() || id.value() >= mhds_.size()) {
      return NotFound("unknown MHD in interleave set");
    }
    if (mhds_[id.value()]->failed()) {
      return Unavailable("failed MHD in interleave set");
    }
  }
  size = RoundUp(size, std::max(kSegmentAlign, kInterleaveGranule * mhds.size()));

  PoolSegment seg;
  seg.base = next_base_;
  seg.size = size;
  seg.mhds = std::move(mhds);
  next_base_ += size;

  // Dedicated striped backend; per-MHD capacity accounting still applies.
  auto backend = std::make_unique<mem::MemoryBackend>(
      "ilv@" + std::to_string(seg.base), size);
  mem::Region region;
  region.base = seg.base;
  region.size = seg.size;
  region.kind = mem::MemoryKind::kCxlPool;
  region.mhd = seg.mhds.front();  // home for diagnostics only
  region.backend = backend.get();
  region.backend_offset = 0;
  RETURN_IF_ERROR(map_.Register(region));
  striped_backends_.push_back(std::move(backend));

  uint64_t share = size / seg.mhds.size();
  for (MhdId id : seg.mhds) {
    mhd_used_[id.value()] += share;
  }
  segments_.emplace(seg.base, SegmentInfo{seg, false});
  return seg;
}

Status CxlPool::Free(const PoolSegment& segment) {
  auto it = segments_.find(segment.base);
  if (it == segments_.end()) {
    return NotFound("unknown segment");
  }
  if (it->second.freed) {
    return FailedPrecondition("segment already freed");
  }
  it->second.freed = true;
  const PoolSegment& seg = it->second.segment;
  uint64_t share = seg.size / seg.mhds.size();
  for (MhdId id : seg.mhds) {
    CXLPOOL_CHECK(mhd_used_[id.value()] >= share);
    mhd_used_[id.value()] -= share;
  }
  return OkStatus();
}

Result<MhdId> CxlPool::RouteAddress(uint64_t addr) const {
  auto it = segments_.upper_bound(addr);
  if (it == segments_.begin()) {
    return NotFound("address below pool window");
  }
  --it;
  const PoolSegment& seg = it->second.segment;
  if (addr >= seg.end()) {
    return NotFound("address not in any pool segment");
  }
  if (!seg.interleaved()) {
    return seg.mhds.front();
  }
  uint64_t granule = (addr - seg.base) / kInterleaveGranule;
  return seg.mhds[granule % seg.mhds.size()];
}

uint64_t CxlPool::used_bytes(MhdId id) const {
  CXLPOOL_CHECK(id.valid() && id.value() < mhd_used_.size());
  return mhd_used_[id.value()];
}

uint64_t CxlPool::total_capacity() const {
  uint64_t total = 0;
  for (const auto& m : mhds_) {
    total += m->capacity();
  }
  return total;
}

uint64_t CxlPool::total_used() const {
  uint64_t total = 0;
  for (uint64_t u : mhd_used_) {
    total += u;
  }
  return total;
}

size_t CxlPool::PoisonedLineCount() const {
  size_t total = 0;
  for (const auto& mhd : mhds_) {
    total += mhd->media().poisoned_line_count();
  }
  for (const auto& backend : striped_backends_) {
    total += backend->poisoned_line_count();
  }
  return total;
}

}  // namespace cxlpool::cxl

namespace cxlpool::cxl {

Nanos CxlPool::RecordPendingCommit(uint64_t addr, uint64_t len, Nanos visible_at,
                                   Nanos now) {
  // Opportunistic GC: drop entries that have already committed.
  if (pending_commits_.size() > 8192) {
    for (auto it = pending_commits_.begin(); it != pending_commits_.end();) {
      if (it->second <= now) {
        it = pending_commits_.erase(it);
      } else {
        ++it;
      }
    }
  }
  uint64_t first = CachelineFloor(addr);
  uint64_t lines = CachelinesTouched(addr, len);
  // Same-address ordering: the controller write buffer drains per-address
  // FIFO, so a write accepted while an earlier same-line write is pending
  // commits no earlier than it. (Equal times are safe: the event loop is
  // FIFO among same-time events, so the later-issued write lands last.)
  Nanos ordered = visible_at;
  for (uint64_t i = 0; i < lines; ++i) {
    auto it = pending_commits_.find(first + i * kCachelineSize);
    if (it != pending_commits_.end() && it->second > now) {
      ordered = std::max(ordered, it->second);
    }
  }
  for (uint64_t i = 0; i < lines; ++i) {
    Nanos& slot = pending_commits_[first + i * kCachelineSize];
    slot = std::max(slot, ordered);
  }
  return ordered;
}

Nanos CxlPool::PendingCommitTime(uint64_t addr, uint64_t len) const {
  if (pending_commits_.empty()) {
    return 0;
  }
  Nanos latest = 0;
  uint64_t first = CachelineFloor(addr);
  uint64_t lines = CachelinesTouched(addr, len);
  for (uint64_t i = 0; i < lines; ++i) {
    auto it = pending_commits_.find(first + i * kCachelineSize);
    if (it != pending_commits_.end()) {
      latest = std::max(latest, it->second);
    }
  }
  return latest;
}

}  // namespace cxlpool::cxl

namespace cxlpool::cxl {

void CxlPool::RegisterSnoopTarget(HostId host, mem::WriteBackCache* cache) {
  CXLPOOL_CHECK(host.valid() && cache != nullptr);
  CXLPOOL_CHECK(host.value() < 32);  // bitmap-sized pods
  snoop_targets_.emplace_back(host, cache);
}

void CxlPool::TrackCacher(uint64_t line_addr, HostId host) {
  if (!back_invalidate_) {
    return;
  }
  cacher_bits_[line_addr] |= (1u << host.value());
}

void CxlPool::UntrackCacher(uint64_t line_addr, HostId host) {
  if (!back_invalidate_) {
    return;
  }
  auto it = cacher_bits_.find(line_addr);
  if (it == cacher_bits_.end()) {
    return;
  }
  it->second &= ~(1u << host.value());
  if (it->second == 0) {
    cacher_bits_.erase(it);
  }
}

int CxlPool::BackInvalidate(uint64_t addr, uint64_t len, HostId writer) {
  if (!back_invalidate_) {
    return 0;
  }
  int snoops = 0;
  uint64_t first = CachelineFloor(addr);
  uint64_t lines = CachelinesTouched(addr, len);
  for (uint64_t i = 0; i < lines; ++i) {
    uint64_t laddr = first + i * kCachelineSize;
    auto it = cacher_bits_.find(laddr);
    if (it == cacher_bits_.end()) {
      continue;
    }
    uint32_t bits = it->second;
    for (auto& [host, cache] : snoop_targets_) {
      if (host == writer || (bits & (1u << host.value())) == 0) {
        continue;
      }
      cache->Remove(laddr);
      ++snoops;
    }
    // Only the writer (if it caches the line) remains tracked.
    it->second &= (writer.valid() ? (1u << writer.value()) : 0u);
    if (it->second == 0) {
      cacher_bits_.erase(it);
    }
  }
  return snoops;
}

}  // namespace cxlpool::cxl
