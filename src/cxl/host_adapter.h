// HostAdapter: one host's view of the simulated memory system.
//
// CPU-side operations (Load/Store/StoreNt/Flush/Invalidate) route through a
// per-host write-back cache for CXL pool addresses, charging calibrated
// latency plus link-bandwidth serialization in simulated time. Pool memory
// is NOT coherent across hosts: cached loads can return stale bytes and
// dirty stores stay invisible to the pool until flushed — the software
// coherence protocol (paper §4.1) uses StoreNt to publish and
// Invalidate-before-Load to consume.
//
// Device-side operations (DmaRead/DmaWrite) model inbound PCIe DMA through
// this host's root complex: coherent with THIS host's cache (snooped) but
// not with any other host's — which is exactly the asymmetry the paper's
// datapath is designed around.
#ifndef SRC_CXL_HOST_ADAPTER_H_
#define SRC_CXL_HOST_ADAPTER_H_

#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/common/units.h"
#include "src/cxl/coherence_observer.h"
#include "src/cxl/link.h"
#include "src/cxl/params.h"
#include "src/cxl/pool.h"
#include "src/mem/address_map.h"
#include "src/mem/cache.h"
#include "src/sim/bandwidth.h"
#include "src/sim/random.h"
#include "src/sim/task.h"

namespace cxlpool::netsim {
class FaultPlane;
}  // namespace cxlpool::netsim

namespace cxlpool::cxl {

class HostAdapter {
 public:
  struct Config {
    CxlTiming timing;
    // Cache capacity (in 64 B lines) dedicated to CXL-mapped memory.
    size_t cache_lines = 128 * 1024;  // 8 MiB
  };

  struct Stats {
    uint64_t loads = 0;
    uint64_t load_bytes = 0;
    uint64_t stores = 0;
    uint64_t store_bytes = 0;
    uint64_t nt_stores = 0;
    uint64_t nt_store_bytes = 0;
    uint64_t flushes = 0;
    uint64_t flushed_dirty_lines = 0;
    uint64_t invalidates = 0;
    uint64_t dma_reads = 0;
    uint64_t dma_writes = 0;
    // Dirty lines dropped because an nt-store overwrote them, or because a
    // writeback target was unreachable. Nonzero values indicate a protocol
    // bug in the code under test.
    uint64_t lost_dirty_lines = 0;
    // Loads / DMA reads that hit a poisoned media line and returned
    // kDataLoss instead of bytes (media RAS, paper §5 gray failures).
    uint64_t poisoned_reads = 0;
  };

  HostAdapter(HostId id, sim::EventLoop& loop, mem::AddressMap& map, CxlPool& pool,
              Config config);
  HostAdapter(const HostAdapter&) = delete;
  HostAdapter& operator=(const HostAdapter&) = delete;

  HostId id() const { return id_; }
  sim::EventLoop& loop() { return loop_; }
  const CxlTiming& timing() const { return config_.timing; }

  // Wires this host's local DRAM window (created by CxlPod).
  void AttachDram(uint64_t base, uint64_t size, double bytes_per_ns);
  // Bump-allocates host-local DRAM (for local I/O buffers).
  Result<uint64_t> AllocateDram(uint64_t size);

  // Registers the CXL link this host uses to reach link->mhd().
  void ConnectLink(CxlLink* link);
  // The link to an MHD, or nullptr if not connected.
  CxlLink* LinkTo(MhdId mhd) const;

  // --- Host-crash fault model (paper §5) ---
  // A crashed host issues no memory traffic: every CPU- and DMA-side
  // operation fails with kUnavailable until the host is repaired. Crash
  // listeners fire on every transition (crashed=true on failure, false on
  // repair) in registration order — PcieDevice uses this to fail attached
  // devices together with their host. Prefer CxlPod::FailHost/RepairHost,
  // which also sever the host's CXL links.
  bool crashed() const { return crashed_; }
  void SetCrashed(bool crashed);
  void AddCrashListener(const void* key, std::function<void(bool)> fn);
  void RemoveCrashListener(const void* key);

  // --- CPU-side timed operations (coroutines; complete in simulated time).
  // Cached load; may return stale pool bytes if another agent wrote the
  // pool since this host cached the line.
  sim::Task<Status> Load(uint64_t addr, std::span<std::byte> out);
  // Cached write-back store; NOT visible to other hosts until flushed.
  sim::Task<Status> Store(uint64_t addr, std::span<const std::byte> in);
  // Non-temporal store: bypasses the cache, immediately visible in the
  // pool. The publish primitive of the software coherence protocol.
  sim::Task<Status> StoreNt(uint64_t addr, std::span<const std::byte> in);
  // clwb + fence over [addr, addr+len): writes back dirty lines, drops them.
  sim::Task<Status> Flush(uint64_t addr, uint64_t len);
  // Self-invalidate [addr, addr+len) so the next Load refetches from the
  // pool. The consume primitive of the software coherence protocol.
  // (Dirty lines are written back first, like clflush.)
  sim::Task<Status> Invalidate(uint64_t addr, uint64_t len);

  // --- Device-side (inbound PCIe DMA through this host's root complex).
  sim::Task<Status> DmaRead(uint64_t addr, std::span<std::byte> out);
  sim::Task<Status> DmaWrite(uint64_t addr, std::span<const std::byte> in);

  // Untimed helpers for tests: direct backend access, no cache interaction.
  void PeekBackend(uint64_t addr, std::span<std::byte> out) const;
  void PokeBackend(uint64_t addr, std::span<const std::byte> in);

  mem::WriteBackCache& cache() { return cache_; }
  const Stats& stats() const { return stats_; }
  mem::AddressMap& address_map() { return map_; }
  CxlPool& cxl_pool() { return pool_; }

  // --- Coherence-protocol instrumentation (src/analysis) ---
  // When set, pool-line accesses emit CoherenceEvents; nullptr (default)
  // disables instrumentation at the cost of one branch per line.
  void set_coherence_observer(CoherenceObserver* obs) { coherence_observer_ = obs; }
  CoherenceObserver* coherence_observer() const { return coherence_observer_; }

  // --- Message-fabric fault plane (src/netsim) ---
  // Set by CxlPod: the directed per-link partition/loss model that the
  // msg ring receivers consult for host-to-host frames. Raw memory
  // traffic never goes through it. nullptr = perfectly reliable fabric.
  void set_fault_plane(netsim::FaultPlane* plane) { fault_plane_ = plane; }
  netsim::FaultPlane* fault_plane() const { return fault_plane_; }

  // Announces a software handoff of [addr, addr+len) — called by
  // messaging/driver layers at the moment a doorbell/RPC/ownership
  // transfer references the region. No-op without an observer.
  void NoteHandoff(uint64_t addr, uint64_t len, std::string_view what) {
    if (coherence_observer_ != nullptr) {
      coherence_observer_->OnHandoff(id_, addr, len, what, loop_.now());
    }
  }

 private:
  // Resolves + validates a CPU or DMA access. Local DRAM must belong to
  // this host (a CPU cannot load another host's DRAM; a device cannot DMA
  // into another host's DRAM — that is precisely what requires either a
  // PCIe switch or, per this paper, the CXL pool).
  Result<const mem::Region*> ResolveAccess(uint64_t addr, uint64_t len);

  // Health-checked link for a pool address.
  Result<CxlLink*> RouteCxl(uint64_t addr);

  // Delays until pending posted writes on the involved links have
  // committed to media (PCIe ordering: reads do not pass writes).
  sim::Task<Status> WaitForWriteHorizon(uint64_t addr, uint64_t len);

  // Applies the configured lognormal jitter to a CXL base latency.
  Nanos JitterCxl(Nanos base);

  // Shared flush/invalidate implementation.
  sim::Task<Status> FlushImpl(uint64_t addr, uint64_t len, bool invalidate);

  // Writes an evicted dirty line back to the pool (async with respect to
  // the evicting operation). Drops the data if the path is unhealthy.
  void WritebackEvicted(const mem::WriteBackCache::EvictedLine& ev);

  // Emits a CoherenceEvent for one pool line if an observer is attached.
  void EmitCoherence(CoherenceOp op, uint64_t line_addr) {
    if (coherence_observer_ != nullptr) {
      coherence_observer_->OnLineEvent({id_, op, line_addr, loop_.now()});
    }
  }

  HostId id_;
  sim::EventLoop& loop_;
  mem::AddressMap& map_;
  CxlPool& pool_;
  Config config_;
  mem::WriteBackCache cache_;

  std::vector<CxlLink*> links_;  // indexed by MHD id; may contain nullptr

  bool crashed_ = false;
  // Insertion-ordered (NOT pointer-ordered) so notification order is
  // deterministic across runs.
  std::vector<std::pair<const void*, std::function<void(bool)>>> crash_listeners_;

  CoherenceObserver* coherence_observer_ = nullptr;
  netsim::FaultPlane* fault_plane_ = nullptr;

  uint64_t dram_base_ = 0;
  uint64_t dram_size_ = 0;
  uint64_t dram_bump_ = 0;
  sim::BandwidthQueue dram_bw_;
  sim::Rng jitter_rng_;

  Stats stats_;
};

}  // namespace cxlpool::cxl

#endif  // SRC_CXL_HOST_ADAPTER_H_
