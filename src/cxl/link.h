// A point-to-point CXL link between one host and one MHD port. Owns two
// bandwidth queues (one per direction) and a health flag for failure
// injection.
#ifndef SRC_CXL_LINK_H_
#define SRC_CXL_LINK_H_

#include "src/common/ids.h"
#include "src/common/units.h"
#include "src/cxl/params.h"
#include "src/sim/bandwidth.h"

namespace cxlpool::cxl {

class CxlLink {
 public:
  CxlLink(CxlLinkId id, HostId host, MhdId mhd, LinkSpec spec)
      : id_(id),
        host_(host),
        mhd_(mhd),
        spec_(spec),
        to_device_(spec.BytesPerNanos()),
        from_device_(spec.BytesPerNanos()) {}

  CxlLinkId id() const { return id_; }
  HostId host() const { return host_; }
  MhdId mhd() const { return mhd_; }
  const LinkSpec& spec() const { return spec_; }

  bool up() const { return up_; }
  void set_up(bool up) { up_ = up; }

  // Direction host -> MHD (writes, read requests are negligible).
  sim::BandwidthQueue& to_device() { return to_device_; }
  // Direction MHD -> host (read data).
  sim::BandwidthQueue& from_device() { return from_device_; }

 private:
  CxlLinkId id_;
  HostId host_;
  MhdId mhd_;
  LinkSpec spec_;
  sim::BandwidthQueue to_device_;
  sim::BandwidthQueue from_device_;
  bool up_ = true;
};

}  // namespace cxlpool::cxl

#endif  // SRC_CXL_LINK_H_
