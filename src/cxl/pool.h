// CxlPool: the set of multi-headed devices plus the segment allocator that
// hands out pool memory to hosts (private segments) and to the datapath
// (shared, software-coherent segments). Also owns address routing,
// including 256 B interleaving across several MHDs' links.
#ifndef SRC_CXL_POOL_H_
#define SRC_CXL_POOL_H_

#include <map>
#include <unordered_map>
#include <memory>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/cxl/mhd.h"
#include "src/cxl/params.h"
#include "src/mem/address_map.h"
#include "src/mem/cache.h"

namespace cxlpool::cxl {

// A range of pool memory handed out by Allocate*. Interleaved segments
// stripe consecutive 256 B granules across `mhds`.
struct PoolSegment {
  uint64_t base = 0;
  uint64_t size = 0;
  std::vector<MhdId> mhds;  // size 1 for non-interleaved

  bool interleaved() const { return mhds.size() > 1; }
  uint64_t end() const { return base + size; }
};

class CxlPool {
 public:
  // Registers pool regions into `map` so devices and hosts resolve pool
  // addresses through the same address space.
  explicit CxlPool(mem::AddressMap& map) : map_(map) {}
  CxlPool(const CxlPool&) = delete;
  CxlPool& operator=(const CxlPool&) = delete;

  // Adds an MHD of the given capacity; returns its id.
  MhdId AddMhd(uint64_t capacity_bytes);

  MultiHeadedDevice& mhd(MhdId id);
  const MultiHeadedDevice& mhd(MhdId id) const;
  size_t mhd_count() const { return mhds_.size(); }

  // Allocates `size` bytes on a single MHD. With no `preferred`, picks the
  // least-utilized healthy MHD (capacity-based). Sizes are rounded up to
  // 4 KiB.
  Result<PoolSegment> Allocate(uint64_t size, MhdId preferred = MhdId::Invalid());

  // Allocates `size` bytes striped across the given MHDs at the CPU
  // interleave granule (256 B). Used to aggregate link bandwidth (§3).
  Result<PoolSegment> AllocateInterleaved(uint64_t size, std::vector<MhdId> mhds);

  // Returns the segment's bytes to the utilization accounting. Address
  // space is not recycled (monotone bump allocation keeps routing simple;
  // the 1 TiB window is far larger than any experiment).
  Status Free(const PoolSegment& segment);

  // Which MHD serves the byte at `addr` (granule-accurate for interleaved
  // segments). kNotFound if the address is not pool memory.
  Result<MhdId> RouteAddress(uint64_t addr) const;

  uint64_t used_bytes(MhdId id) const;
  uint64_t total_capacity() const;
  uint64_t total_used() const;

  // Poisoned 64B lines across all pool media (MHD media plus the dedicated
  // backends of interleaved segments). End-of-storm assertions use this to
  // prove the scrubber drained every injected poison.
  size_t PoisonedLineCount() const;

  // --- CXL 3.0 Back-Invalidate emulation (paper §3) ---
  // When enabled on a pod, the pool keeps a snoop filter of which hosts
  // cache each line; a pool write (nt-store or device DMA) back-invalidates
  // every remote cached copy, so consumers may use plain cached loads. No
  // shipping CPU or MHD supports this today — it exists here as the
  // ablation the paper contrasts software coherence against.
  void set_back_invalidate(bool enabled) { back_invalidate_ = enabled; }
  bool back_invalidate() const { return back_invalidate_; }

  // Registers a host's cache for snooping (wired by CxlPod).
  void RegisterSnoopTarget(HostId host, mem::WriteBackCache* cache);
  // Records that `host` holds a copy of `line_addr`.
  void TrackCacher(uint64_t line_addr, HostId host);
  void UntrackCacher(uint64_t line_addr, HostId host);
  // Drops every remote copy of the lines in [addr, addr+len); returns the
  // number of snoop invalidations issued (each costs snoop latency at the
  // writer).
  int BackInvalidate(uint64_t addr, uint64_t len, HostId writer);

  // --- Posted-write commit tracking (same-address ordering) ---
  // A posted write (nt-store or device DMA) is accepted quickly but its
  // data becomes readable at the MHD only at `visible_at`. Readers of a
  // line with a pending commit are served from the controller's write
  // buffer: they complete no earlier than the commit and then observe the
  // new data. Unrelated lines are unaffected (CXL.mem has no cross-address
  // ordering).
  // Returns the ORDERED commit time: never earlier than a still-pending
  // commit to any of the same lines, so back-to-back posted writes to one
  // address drain per-address FIFO (jitter must not let an older write
  // land after — and silently revert — a newer one). Callers schedule
  // their media write at the returned time, not the raw `visible_at`.
  Nanos RecordPendingCommit(uint64_t addr, uint64_t len, Nanos visible_at, Nanos now);
  // Latest pending commit time overlapping [addr, addr+len), or 0.
  Nanos PendingCommitTime(uint64_t addr, uint64_t len) const;

 private:
  struct SegmentInfo {
    PoolSegment segment;
    bool freed = false;
  };

  mem::AddressMap& map_;
  std::vector<std::unique_ptr<MultiHeadedDevice>> mhds_;
  std::vector<uint64_t> mhd_used_;        // bytes allocated per MHD
  std::vector<uint64_t> mhd_bump_;        // media bump offset per MHD
  // Interleaved segments get dedicated striped backends (bytes contiguous,
  // timing routed per-granule to member MHDs' links).
  std::vector<std::unique_ptr<mem::MemoryBackend>> striped_backends_;
  std::map<uint64_t, SegmentInfo> segments_;  // keyed by base
  uint64_t next_base_ = kPoolWindowBase;
  // line address -> commit time of the newest pending posted write.
  mutable std::unordered_map<uint64_t, Nanos> pending_commits_;

  // Back-Invalidate snoop filter state.
  bool back_invalidate_ = false;
  std::vector<std::pair<HostId, mem::WriteBackCache*>> snoop_targets_;
  std::unordered_map<uint64_t, uint32_t> cacher_bits_;  // line -> host bitmap
};

}  // namespace cxlpool::cxl

#endif  // SRC_CXL_POOL_H_
