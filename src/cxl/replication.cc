#include "src/cxl/replication.h"

#include <string>

#include "src/common/check.h"

namespace cxlpool::cxl {

Result<ReplicatedRegion> ReplicatedRegion::Create(CxlPool& pool, uint64_t size,
                                                  int replicas) {
  if (replicas < 2) {
    return InvalidArgument("replication needs >= 2 replicas");
  }
  // Count healthy MHDs.
  int healthy = 0;
  for (size_t m = 0; m < pool.mhd_count(); ++m) {
    if (!pool.mhd(MhdId(static_cast<uint32_t>(m))).failed()) {
      ++healthy;
    }
  }
  if (healthy < replicas) {
    return ResourceExhausted("pod has " + std::to_string(healthy) +
                             " healthy MHDs, need " + std::to_string(replicas));
  }

  ReplicatedRegion region;
  region.size_ = size;
  int placed = 0;
  for (size_t m = 0; m < pool.mhd_count() && placed < replicas; ++m) {
    MhdId id(static_cast<uint32_t>(m));
    if (pool.mhd(id).failed()) {
      continue;
    }
    ASSIGN_OR_RETURN(PoolSegment seg, pool.Allocate(size, id));
    region.segments_.push_back(seg);
    ++placed;
  }
  CXLPOOL_CHECK(placed == replicas);
  return region;
}

sim::Task<Status> ReplicatedRegion::Publish(HostAdapter& host, uint64_t offset,
                                            std::span<const std::byte> in) {
  if (offset + in.size() > size_) {
    co_return OutOfRange("write beyond replicated region");
  }
  ++stats_.publishes;
  int ok = 0;
  Status last_error = OkStatus();
  // Posted nt-stores: issuing them back-to-back overlaps the commits.
  for (const PoolSegment& seg : segments_) {
    Status st = co_await host.StoreNt(seg.base + offset, in);
    if (st.ok()) {
      ++ok;
    } else {
      last_error = st;
    }
  }
  if (ok == 0) {
    co_return last_error;
  }
  if (ok < static_cast<int>(segments_.size())) {
    ++stats_.degraded_writes;
  }
  co_return OkStatus();
}

sim::Task<Status> ReplicatedRegion::ReadFresh(HostAdapter& host, uint64_t offset,
                                              std::span<std::byte> out) {
  if (offset + out.size() > size_) {
    co_return OutOfRange("read beyond replicated region");
  }
  Status last_error = Internal("no replicas");
  for (size_t i = 0; i < segments_.size(); ++i) {
    uint64_t addr = segments_[i].base + offset;
    Status st = co_await host.Invalidate(addr, out.size());
    if (st.ok()) {
      st = co_await host.Load(addr, out);
    }
    if (st.ok()) {
      if (i > 0) {
        ++stats_.failover_reads;
      }
      co_return OkStatus();
    }
    last_error = st;
  }
  co_return last_error;
}

}  // namespace cxlpool::cxl
