#include "src/cxl/replication.h"

#include <array>
#include <cstring>
#include <string>

#include "src/common/check.h"

namespace cxlpool::cxl {

namespace {

// FNV-1a over one 64B line; cheap, deterministic, and collision-safe enough
// for corruption detection in a simulator.
uint64_t HashLine(std::span<const std::byte> bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (std::byte b : bytes) {
    h ^= static_cast<uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

Result<ReplicatedRegion> ReplicatedRegion::Create(CxlPool& pool, uint64_t size,
                                                  int replicas) {
  if (replicas < 2) {
    return InvalidArgument("replication needs >= 2 replicas");
  }
  // Count healthy MHDs.
  int healthy = 0;
  for (size_t m = 0; m < pool.mhd_count(); ++m) {
    if (!pool.mhd(MhdId(static_cast<uint32_t>(m))).failed()) {
      ++healthy;
    }
  }
  if (healthy < replicas) {
    return ResourceExhausted("pod has " + std::to_string(healthy) +
                             " healthy MHDs, need " + std::to_string(replicas));
  }

  ReplicatedRegion region;
  region.size_ = size;
  int placed = 0;
  for (size_t m = 0; m < pool.mhd_count() && placed < replicas; ++m) {
    MhdId id(static_cast<uint32_t>(m));
    if (pool.mhd(id).failed()) {
      continue;
    }
    ASSIGN_OR_RETURN(PoolSegment seg, pool.Allocate(size, id));
    region.segments_.push_back(seg);
    ++placed;
  }
  CXLPOOL_CHECK(placed == replicas);
  region.line_checksums_.assign(region.LineCount(), 0);
  region.checksum_known_.assign(region.LineCount(), 0);
  return region;
}

uint64_t ReplicatedRegion::LineCount() const {
  return CachelineCeil(size_) / kCachelineSize;
}

sim::Task<Status> ReplicatedRegion::Publish(HostAdapter& host, uint64_t offset,
                                            std::span<const std::byte> in) {
  if (offset + in.size() > size_) {
    co_return OutOfRange("write beyond replicated region");
  }
  ++stats_.publishes;
  // Record per-line checksums of the intended content BEFORE the writes:
  // the checksum describes what every replica should hold, so the scrubber
  // can repair a replica the write missed. Lines only partially covered by
  // this publish lose their checksum (the line's full content is unknown).
  uint64_t first_line = offset / kCachelineSize;
  uint64_t last_line = (offset + in.size() - 1) / kCachelineSize;
  for (uint64_t line = first_line; line <= last_line; ++line) {
    uint64_t lo = line * kCachelineSize;
    if (lo >= offset && lo + kCachelineSize <= offset + in.size()) {
      line_checksums_[line] =
          HashLine(in.subspan(lo - offset, kCachelineSize));
      checksum_known_[line] = 1;
    } else {
      checksum_known_[line] = 0;
    }
  }
  int ok = 0;
  Status last_error = OkStatus();
  // Posted nt-stores: issuing them back-to-back overlaps the commits.
  for (const PoolSegment& seg : segments_) {
    Status st = co_await host.StoreNt(seg.base + offset, in);
    if (st.ok()) {
      ++ok;
    } else {
      last_error = st;
    }
  }
  if (ok == 0) {
    co_return last_error;
  }
  if (ok < static_cast<int>(segments_.size())) {
    ++stats_.degraded_writes;
  }
  co_return OkStatus();
}

sim::Task<Status> ReplicatedRegion::ReadFresh(HostAdapter& host, uint64_t offset,
                                              std::span<std::byte> out) {
  if (offset + out.size() > size_) {
    co_return OutOfRange("read beyond replicated region");
  }
  Status last_error = Internal("no replicas");
  for (size_t i = 0; i < segments_.size(); ++i) {
    uint64_t addr = segments_[i].base + offset;
    Status st = co_await host.Invalidate(addr, out.size());
    if (st.ok()) {
      st = co_await host.Load(addr, out);
    }
    if (st.ok()) {
      if (i > 0) {
        ++stats_.failover_reads;
      }
      co_return OkStatus();
    }
    last_error = st;
  }
  co_return last_error;
}

sim::Task<Status> ReplicatedRegion::ScrubOnce(HostAdapter& host) {
  const size_t n = segments_.size();
  std::vector<std::array<std::byte, kCachelineSize>> data(n);
  std::vector<Status> read_status(n, OkStatus());

  for (uint64_t line = 0; line < LineCount(); ++line) {
    ++stats_.lines_scrubbed;
    bool any_poison = false;
    for (size_t i = 0; i < n; ++i) {
      // The allocator rounds segments to 4 KiB, so a full-line access past
      // size_ on the final line stays inside the segment.
      uint64_t addr = segments_[i].base + line * kCachelineSize;
      read_status[i] = co_await host.Invalidate(addr, kCachelineSize);
      if (read_status[i].ok()) {
        read_status[i] = co_await host.Load(addr, data[i]);
      }
      if (read_status[i].code() == StatusCode::kDataLoss) {
        any_poison = true;
      }
    }

    // Pick the reference copy: the replica matching the published checksum
    // if we have one, else the first healthy read. Divergent or poisoned
    // replicas are repaired from it.
    int ref = -1;
    bool conflict = false;
    if (checksum_known_[line] != 0) {
      for (size_t i = 0; i < n; ++i) {
        if (read_status[i].ok() &&
            HashLine(data[i]) == line_checksums_[line]) {
          ref = static_cast<int>(i);
          break;
        }
      }
      if (ref < 0) {
        // Publish-version wins when any replica still holds it; here NONE
        // does — every healthy copy diverged from the published content
        // (e.g. both sides of a partition scribbled independently). Tie:
        // converge on the lowest healthy index, flag the line, and adopt
        // the winner's checksum so the next sweep sees a settled line.
        // Never byte-merged, never silent.
        for (size_t i = 0; i < n; ++i) {
          if (read_status[i].ok()) {
            ref = static_cast<int>(i);
            conflict = true;
            line_checksums_[line] = HashLine(data[i]);
            break;
          }
        }
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        if (read_status[i].ok()) {
          ref = static_cast<int>(i);
          break;
        }
      }
      // With no published checksum there is no authority to arbitrate:
      // disagreement among healthy replicas is also a conflict, resolved
      // by the same deterministic lowest-index rule.
      if (ref >= 0) {
        for (size_t i = ref + 1; i < n; ++i) {
          if (read_status[i].ok() &&
              std::memcmp(data[i].data(), data[ref].data(),
                          kCachelineSize) != 0) {
            conflict = true;
            break;
          }
        }
      }
    }
    if (conflict) {
      ++stats_.scrub_conflicts;
    }
    if (ref < 0) {
      // No usable copy this sweep. Only media loss makes that
      // unrecoverable; pure unavailability (links/MHDs down) is transient
      // and simply retried next sweep.
      if (any_poison || checksum_known_[line] != 0) {
        bool all_unavailable = true;
        for (size_t i = 0; i < n; ++i) {
          if (read_status[i].code() != StatusCode::kUnavailable) {
            all_unavailable = false;
          }
        }
        if (!all_unavailable) {
          ++stats_.scrub_unrecoverable;
        }
      }
      continue;
    }

    for (size_t i = 0; i < n; ++i) {
      if (static_cast<int>(i) == ref) {
        continue;
      }
      bool poisoned = read_status[i].code() == StatusCode::kDataLoss;
      bool divergent =
          read_status[i].ok() &&
          std::memcmp(data[i].data(), data[ref].data(), kCachelineSize) != 0;
      if (!poisoned && !divergent) {
        continue;  // healthy and identical, or transiently unreachable
      }
      // Full-line nt-store: restores the bytes AND clears poison on the
      // repaired media line (a covering write lays down fresh ECC).
      uint64_t addr = segments_[i].base + line * kCachelineSize;
      Status st = co_await host.StoreNt(
          addr, std::span<const std::byte>(data[ref].data(), kCachelineSize));
      if (st.ok()) {
        ++stats_.scrub_repairs;
      }
      // A failed repair (path just went down) is retried next sweep.
    }
  }
  co_return OkStatus();
}

sim::Task<> ReplicatedRegion::ScrubLoop(HostAdapter& host, Nanos interval,
                                        sim::StopToken& stop) {
  while (!stop.stopped()) {
    co_await sim::Delay(host.loop(), interval);
    if (stop.stopped()) {
      break;
    }
    Status st = co_await ScrubOnce(host);
    (void)st;  // per-line outcomes are in stats_; a sweep itself cannot fail
  }
}

void ReplicatedRegion::BindMetrics(obs::Registry* registry,
                                   const std::string& name) {
  if (registry == nullptr) {
    return;
  }
  obs::Labels labels = {{"region", name}};
  registry->RegisterProbe("scrub.lines_scrubbed", labels, [this] {
    return static_cast<int64_t>(stats_.lines_scrubbed);
  });
  registry->RegisterProbe("scrub.repairs", labels, [this] {
    return static_cast<int64_t>(stats_.scrub_repairs);
  });
  registry->RegisterProbe("scrub.unrecoverable", labels, [this] {
    return static_cast<int64_t>(stats_.scrub_unrecoverable);
  });
  registry->RegisterProbe("scrub.conflicts", labels, [this] {
    return static_cast<int64_t>(stats_.scrub_conflicts);
  });
  registry->RegisterProbe("replication.publishes", labels, [this] {
    return static_cast<int64_t>(stats_.publishes);
  });
  registry->RegisterProbe("replication.degraded_writes", labels, [this] {
    return static_cast<int64_t>(stats_.degraded_writes);
  });
  registry->RegisterProbe("replication.failover_reads", labels, [this] {
    return static_cast<int64_t>(stats_.failover_reads);
  });
}

}  // namespace cxlpool::cxl
