// A multi-headed CXL memory device (MHD): one slab of media exposed
// through up to kMaxPorts independent CXL ports, one per connected host
// (paper §3 — UnifabriX-class devices offer up to 20 ports today).
#ifndef SRC_CXL_MHD_H_
#define SRC_CXL_MHD_H_

#include <memory>
#include <string>

#include "src/common/ids.h"
#include "src/mem/backend.h"

namespace cxlpool::cxl {

class MultiHeadedDevice {
 public:
  static constexpr int kMaxPorts = 20;

  MultiHeadedDevice(MhdId id, uint64_t capacity_bytes)
      : id_(id),
        media_("mhd" + std::to_string(id.value()) + "-media", capacity_bytes) {}

  MhdId id() const { return id_; }
  uint64_t capacity() const { return media_.size(); }

  mem::MemoryBackend& media() { return media_; }
  const mem::MemoryBackend& media() const { return media_; }

  // Failure injection: a failed MHD rejects all accesses until repaired.
  bool failed() const { return failed_; }
  void set_failed(bool failed) { failed_ = failed; }

 private:
  MhdId id_;
  mem::MemoryBackend media_;
  bool failed_ = false;
};

}  // namespace cxlpool::cxl

#endif  // SRC_CXL_MHD_H_
