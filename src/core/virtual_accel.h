// VirtualAccel: host-side handle to a (possibly remote) pooled
// accelerator — the §5 "soft accelerator disaggregation" datapath. A rack
// deploys one specialized accelerator; every host in the CXL pod submits
// jobs to it through pool memory and the forwarding channel.
#ifndef SRC_CORE_VIRTUAL_ACCEL_H_
#define SRC_CORE_VIRTUAL_ACCEL_H_

#include <memory>

#include "src/core/queue_pair.h"
#include "src/devices/accel.h"

namespace cxlpool::core {

class VirtualAccel {
 public:
  struct Config {
    uint32_t queue_entries = 32;
    bool rings_in_cxl = true;
    obs::Tracer* tracer = nullptr;
  };

  // `queue_pair` selects the device queue pair this handle drives (obtain
  // one via Accelerator::AllocateQueuePair; each concurrent user needs its
  // own).
  static sim::Task<Result<std::unique_ptr<VirtualAccel>>> Create(
      cxl::HostAdapter& host, std::unique_ptr<MmioPath> mmio, Config config,
      int queue_pair = 0) {
    uint64_t base = static_cast<uint64_t>(queue_pair) * devices::kAccelQpStride;
    QueuePairDriver::Config qp;
    qp.entries = config.queue_entries;
    qp.rings_in_cxl = config.rings_in_cxl;
    qp.tracer = config.tracer;
    qp.reset_reg = base + devices::kAccelRegReset;
    qp.sq_base_reg = base + devices::kAccelRegSqBase;
    qp.sq_size_reg = base + devices::kAccelRegSqSize;
    qp.sq_doorbell_reg = base + devices::kAccelRegSqDoorbell;
    qp.cq_base_reg = base + devices::kAccelRegCqBase;
    qp.cmd_size = devices::kAccelJobSize;
    qp.cpl_size = devices::kAccelCplSize;
    auto driver = co_await QueuePairDriver::Create(host, std::move(mmio), qp);
    if (!driver.ok()) {
      co_return driver.status();
    }
    co_return std::unique_ptr<VirtualAccel>(new VirtualAccel(std::move(*driver)));
  }

  // Runs one offload job: device DMAs `in_len` bytes from `in_addr`,
  // transforms them, DMAs the result to `out_addr`. Returns device status
  // (0 = OK).
  sim::Task<Result<uint16_t>> RunJob(uint64_t in_addr, uint32_t in_len,
                                     uint64_t out_addr, Nanos deadline);

  sim::Task<Status> Rebind(std::unique_ptr<MmioPath> mmio) {
    return driver_->Rebind(std::move(mmio));
  }

  QueuePairDriver& driver() { return *driver_; }
  bool remote() const { return driver_->remote(); }

 private:
  explicit VirtualAccel(std::unique_ptr<QueuePairDriver> driver)
      : driver_(std::move(driver)) {}

  std::unique_ptr<QueuePairDriver> driver_;
};

}  // namespace cxlpool::core

#endif  // SRC_CORE_VIRTUAL_ACCEL_H_
