#include "src/core/rack.h"

#include <string>

#include "src/common/check.h"

namespace cxlpool::core {

Rack::Rack(sim::EventLoop& loop, const RackConfig& config)
    : loop_(loop), config_(config) {
  if (config_.obs != nullptr) {
    if (config_.orch.obs == nullptr) config_.orch.obs = config_.obs;
    if (config_.nic.obs == nullptr) config_.nic.obs = config_.obs;
  }
  pod_ = std::make_unique<cxl::CxlPod>(loop, config_.pod);
  network_ = std::make_unique<netsim::Network>(loop, config_.net);
  // Fabric frames ride the same fault plane as the pod: link-class faults
  // (drop/dup/delay) apply to any frame whose endpoints map to hosts.
  network_->BindFaultPlane(&pod_->fault_plane());
  orchestrator_ = std::make_unique<Orchestrator>(
      *pod_, HostId(config_.orchestrator_home), config_.orch);

  for (int h = 0; h < pod_->host_count(); ++h) {
    CXLPOOL_CHECK_OK(orchestrator_->AddAgent(pod_->host(h)).status());
  }

  uint32_t next_device = 0;
  for (int h = 0; h < pod_->host_count(); ++h) {
    for (int n = 0; n < config_.nics_per_host; ++n) {
      auto nic = std::make_unique<devices::Nic>(
          PcieDeviceId(next_device),
          "nic" + std::to_string(next_device), loop, config_.nic);
      ++next_device;
      nic->AttachTo(&pod_->host(h));
      netsim::MacAddr mac = kMacBase + nics_.size();
      CXLPOOL_CHECK_OK(nic->ConnectNetwork(network_.get(), mac));
      network_->SetMacHost(mac, HostId(h));
      devices::Nic* raw = nic.get();
      orchestrator_->RegisterDevice(HostId(h), raw, DeviceType::kNic,
                                    [raw] { return raw->WireUtilization(); });
      nics_.push_back(std::move(nic));
    }
    for (int s = 0; s < config_.ssds_per_host; ++s) {
      devices::SsdConfig ssd_config = config_.ssd;
      ssd_config.seed = config_.ssd.seed + next_device;
      auto ssd = std::make_unique<devices::Ssd>(
          PcieDeviceId(next_device),
          "ssd" + std::to_string(next_device), loop, ssd_config);
      ++next_device;
      ssd->AttachTo(&pod_->host(h));
      devices::Ssd* raw = ssd.get();
      orchestrator_->RegisterDevice(HostId(h), raw, DeviceType::kSsd,
                                    [raw] { return raw->ChannelUtilization(); });
      ssds_.push_back(std::move(ssd));
    }
  }
  for (int a = 0; a < config_.accels; ++a) {
    auto accel = std::make_unique<devices::Accelerator>(
        PcieDeviceId(next_device), "accel" + std::to_string(next_device), loop,
        config_.accel);
    ++next_device;
    accel->AttachTo(&pod_->host(config_.accel_home));
    devices::Accelerator* raw = accel.get();
    orchestrator_->RegisterDevice(HostId(config_.accel_home), raw,
                                  DeviceType::kAccel,
                                  [raw] { return raw->EngineUtilization(); });
    accels_.push_back(std::move(accel));
  }
}

Rack::~Rack() { stop_.Stop(); }

devices::Nic* Rack::nic(PcieDeviceId id) {
  for (auto& nic : nics_) {
    if (nic->id() == id) {
      return nic.get();
    }
  }
  return nullptr;
}

Result<Rack::Lease> Rack::AcquireDevice(HostId user, DeviceType type) {
  ASSIGN_OR_RETURN(Orchestrator::Assignment assignment,
                   orchestrator_->Acquire(user, type));
  ASSIGN_OR_RETURN(std::unique_ptr<MmioPath> mmio,
                   orchestrator_->MakeMmioPath(user, assignment.device));
  return Lease{assignment, std::move(mmio)};
}

sim::Task<Result<Rack::VirtualNicHandle>> Rack::CreateVirtualNic(
    HostId user, VirtualNic::Config config) {
  auto lease = AcquireDevice(user, DeviceType::kNic);
  if (!lease.ok()) {
    co_return lease.status();
  }
  auto vnic = co_await VirtualNic::Create(pod_->host(user),
                                          std::move(lease->mmio), config);
  if (!vnic.ok()) {
    co_return vnic.status();
  }
  VirtualNicHandle handle;
  handle.vnic = std::move(*vnic);
  handle.assignment = lease->assignment;
  devices::Nic* physical = nic(lease->assignment.device);
  handle.mac = physical != nullptr ? physical->mac() : 0;
  co_return std::move(handle);
}

}  // namespace cxlpool::core
