#include "src/core/virtual_ssd.h"

#include "src/msg/wire.h"

namespace cxlpool::core {

sim::Task<Result<uint16_t>> VirtualSsd::Submit(uint8_t opcode, uint64_t lba,
                                               uint32_t nsectors, uint64_t buf_addr,
                                               Nanos deadline) {
  std::array<std::byte, devices::kSsdCmdSize> cmd{};
  cmd[0] = std::byte{opcode};
  msg::wire::PutU64(cmd.data() + 8, lba);
  msg::wire::PutU32(cmd.data() + 16, nsectors);
  msg::wire::PutU64(cmd.data() + 24, buf_addr);
  co_return co_await driver_->SubmitAndWait(cmd, deadline);
}

}  // namespace cxlpool::core
