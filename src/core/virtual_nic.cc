#include "src/core/virtual_nic.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/msg/wire.h"

namespace cxlpool::core {

using msg::wire::GetU32;
using msg::wire::GetU64;
using msg::wire::PutU32;
using msg::wire::PutU64;

namespace {
uint64_t Layout(uint32_t tx_entries, uint32_t rx_entries) {
  return static_cast<uint64_t>(tx_entries) * devices::kNicTxDescSize + kCachelineSize +
         static_cast<uint64_t>(rx_entries) * devices::kNicRxDescSize +
         static_cast<uint64_t>(rx_entries) * devices::kNicRxCplSize;
}
}  // namespace

VirtualNic::VirtualNic(cxl::HostAdapter& host, std::unique_ptr<MmioPath> mmio,
                       Config config)
    : host_(host),
      mmio_(std::move(mmio)),
      config_(config),
      mem_(host, config.rings_in_cxl),
      rx_backoff_(config.poll_min, config.poll_max),
      tx_backoff_(config.poll_min, config.poll_max),
      rx_shadow_(config.rx_entries, 0),
      rx_doorbell_(host.loop(),
                   [this](uint64_t value) { return RxDoorbellWrite(value); },
                   {.watermark = config.rx_doorbell_batch}) {}

VirtualNic::~VirtualNic() {
  if (owns_segment_) {
    (void)host_.cxl_pool().Free(segment_);
  }
}

void VirtualNic::ComputeLayout(uint64_t base) {
  tx_ring_ = base;
  tx_cpl_ = tx_ring_ + static_cast<uint64_t>(config_.tx_entries) * devices::kNicTxDescSize;
  rx_ring_ = tx_cpl_ + kCachelineSize;
  rx_cpl_ = rx_ring_ + static_cast<uint64_t>(config_.rx_entries) * devices::kNicRxDescSize;
}

sim::Task<Result<std::unique_ptr<VirtualNic>>> VirtualNic::Create(
    cxl::HostAdapter& host, std::unique_ptr<MmioPath> mmio, Config config) {
  CXLPOOL_CHECK(config.tx_entries >= 2 && config.rx_entries >= 2);
  auto vnic = std::unique_ptr<VirtualNic>(
      new VirtualNic(host, std::move(mmio), config));

  uint64_t bytes = Layout(config.tx_entries, config.rx_entries);
  uint64_t base = 0;
  if (config.rings_in_cxl) {
    auto seg = host.cxl_pool().Allocate(bytes);
    if (!seg.ok()) {
      co_return seg.status();
    }
    vnic->segment_ = *seg;
    vnic->owns_segment_ = true;
    base = seg->base;
  } else {
    auto addr = host.AllocateDram(bytes);
    if (!addr.ok()) {
      co_return addr.status();
    }
    base = *addr;
  }
  vnic->ComputeLayout(base);

  Status st = co_await vnic->ProgramDevice();
  if (!st.ok()) {
    co_return st;
  }
  co_return std::move(vnic);
}

sim::Task<Status> VirtualNic::ProgramDevice() {
  // Zero the completion structures so stale sequence numbers from an
  // earlier binding can never be mistaken for fresh completions.
  std::vector<std::byte> zeros(kCachelineSize, std::byte{0});
  CO_RETURN_IF_ERROR(co_await mem_.Publish(tx_cpl_, zeros));
  for (uint32_t i = 0; i < config_.rx_entries; ++i) {
    CO_RETURN_IF_ERROR(
        co_await mem_.Publish(rx_cpl_ + i * devices::kNicRxCplSize, zeros));
  }

  CO_RETURN_IF_ERROR(co_await mmio_->Write(devices::kNicRegReset, 1));
  CO_RETURN_IF_ERROR(co_await mmio_->Write(devices::kNicRegTxRingBase, tx_ring_));
  CO_RETURN_IF_ERROR(
      co_await mmio_->Write(devices::kNicRegTxRingSize, config_.tx_entries));
  CO_RETURN_IF_ERROR(co_await mmio_->Write(devices::kNicRegTxCplAddr, tx_cpl_));
  CO_RETURN_IF_ERROR(co_await mmio_->Write(devices::kNicRegRxRingBase, rx_ring_));
  CO_RETURN_IF_ERROR(
      co_await mmio_->Write(devices::kNicRegRxRingSize, config_.rx_entries));
  CO_RETURN_IF_ERROR(co_await mmio_->Write(devices::kNicRegRxCplBase, rx_cpl_));
  stats_.doorbell_writes += 7;
  co_return OkStatus();
}

sim::Task<Status> VirtualNic::SendFrame(netsim::MacAddr dst, uint64_t buf_addr,
                                        uint32_t len) {
  // Flow control against the TX ring (counting reserved-but-unpublished
  // slots so concurrent senders cannot oversubscribe it).
  while (tx_posted_ - tx_completed_cache_ >= config_.tx_entries) {
    ++stats_.tx_stalls;
    auto done = co_await TxCompleted();
    if (!done.ok()) {
      co_return done.status();
    }
    if (tx_posted_ - *done >= config_.tx_entries) {
      co_await sim::Delay(host_.loop(), tx_backoff_.NextDelay());
    } else {
      tx_backoff_.Reset();
    }
  }

  // Reserve the slot before the first suspension point: concurrent
  // SendFrame calls (multi-core stacks) each get a distinct descriptor.
  uint64_t slot = tx_posted_++;
  uint64_t generation = rebind_generation_;
  ++stats_.tx_posted;

  std::array<std::byte, devices::kNicTxDescSize> desc{};
  PutU64(desc.data(), buf_addr);
  PutU32(desc.data() + 8, len);
  PutU32(desc.data() + 12, 0);  // flags
  PutU64(desc.data() + 16, dst);

  uint64_t addr = tx_ring_ + (slot % config_.tx_entries) * devices::kNicTxDescSize;
  CO_RETURN_IF_ERROR(co_await mem_.Publish(addr, desc));
  if (generation != rebind_generation_) {
    co_return Aborted("NIC rebound mid-send");
  }

  // The doorbell may only cover a contiguous prefix of published slots:
  // a later slot can finish publishing before an earlier one.
  tx_published_.insert(slot);
  while (tx_published_.contains(tx_ready_)) {
    tx_published_.erase(tx_ready_);
    ++tx_ready_;
  }
  if (tx_ready_ > tx_doorbell_sent_) {
    uint64_t value = tx_ready_;
    CO_RETURN_IF_ERROR(co_await mmio_->Write(devices::kNicRegTxDoorbell, value));
    ++stats_.doorbell_writes;
    if (generation == rebind_generation_ && value > tx_doorbell_sent_) {
      tx_doorbell_sent_ = value;
    }
  }
  co_return OkStatus();
}

sim::Task<Result<uint64_t>> VirtualNic::TxCompleted() {
  std::array<std::byte, 8> buf;
  Status st = co_await mem_.ReadFresh(tx_cpl_, buf);
  if (!st.ok()) {
    co_return st;
  }
  tx_completed_cache_ = GetU64(buf.data());
  co_return tx_completed_cache_;
}

sim::Task<Status> VirtualNic::PostRxBuffer(uint64_t buf_addr, uint32_t buf_len) {
  if (rx_posted_ - rx_cpl_next_ >= config_.rx_entries) {
    co_return ResourceExhausted("RX ring full");
  }
  uint32_t idx = static_cast<uint32_t>(rx_posted_ % config_.rx_entries);
  std::array<std::byte, devices::kNicRxDescSize> desc{};
  PutU64(desc.data(), buf_addr);
  PutU32(desc.data() + 8, buf_len);
  uint64_t addr = rx_ring_ + idx * devices::kNicRxDescSize;
  CO_RETURN_IF_ERROR(co_await mem_.Publish(addr, desc));
  rx_shadow_[idx] = buf_addr;
  ++rx_posted_;
  ++stats_.rx_posted;
  co_return co_await rx_doorbell_.Offer(rx_posted_);
}

sim::Task<Status> VirtualNic::FlushRxDoorbell() {
  co_return co_await rx_doorbell_.Flush();
}

sim::Task<Status> VirtualNic::RxDoorbellWrite(uint64_t value) {
  CO_RETURN_IF_ERROR(co_await mmio_->Write(devices::kNicRegRxDoorbell, value));
  ++stats_.doorbell_writes;
  co_return OkStatus();
}

sim::Task<Result<VirtualNic::RxEvent>> VirtualNic::PollRx(Nanos deadline) {
  for (;;) {
    uint64_t addr =
        rx_cpl_ + (rx_cpl_next_ % config_.rx_entries) * devices::kNicRxCplSize;
    std::array<std::byte, devices::kNicRxCplSize> entry;
    Status st = co_await mem_.ReadFresh(addr, entry);
    if (!st.ok()) {
      co_return st;
    }
    uint64_t seq = GetU64(entry.data());
    if (seq == rx_cpl_next_ + 1) {
      rx_backoff_.Reset();
      RxEvent ev;
      ev.desc_idx = GetU32(entry.data() + 8);
      ev.len = GetU32(entry.data() + 12);
      ev.buf_addr = rx_shadow_[ev.desc_idx % config_.rx_entries];
      ++rx_cpl_next_;
      ++stats_.rx_events;
      co_return ev;
    }
    Nanos now = host_.loop().now();
    if (now >= deadline) {
      co_return DeadlineExceeded("no RX completion before deadline");
    }
    co_await sim::Delay(host_.loop(),
                        std::min(rx_backoff_.NextDelay(), deadline - now));
  }
}

sim::Task<Status> VirtualNic::Rebind(std::unique_ptr<MmioPath> mmio) {
  mmio_ = std::move(mmio);
  ++rebind_generation_;  // in-flight SendFrame calls abort cleanly
  tx_posted_ = 0;
  tx_ready_ = 0;
  tx_doorbell_sent_ = 0;
  tx_published_.clear();
  tx_completed_cache_ = 0;
  rx_posted_ = 0;
  rx_doorbell_.Reset();  // the replacement NIC's doorbell state restarted
  rx_cpl_next_ = 0;
  std::fill(rx_shadow_.begin(), rx_shadow_.end(), 0);
  co_return co_await ProgramDevice();
}

}  // namespace cxlpool::core
