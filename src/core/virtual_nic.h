// VirtualNic: the host-side handle to a (possibly remote) physical NIC.
//
// This is the paper's datapath in one class. Descriptor rings and
// completion structures are placed either in local DRAM (classic direct-
// attached operation) or in shared CXL pool memory (pooled operation); the
// physical NIC DMAs to them identically. Doorbells go through an MmioPath:
// direct MMIO when the NIC is local, forwarded over the sub-microsecond
// CXL message channel when it is remote. Software coherence (nt-store
// publish / invalidate+load consume) is applied exactly where the pool is
// non-coherent.
//
// Rebind() retargets the handle to a replacement NIC after a failure or a
// load-balancing migration — ring memory stays in place (the new device
// simply DMAs the same pool addresses), which is what makes failover fast.
#ifndef SRC_CORE_VIRTUAL_NIC_H_
#define SRC_CORE_VIRTUAL_NIC_H_

#include <memory>
#include <set>
#include <vector>

#include "src/core/mmio_path.h"
#include "src/core/placed_memory.h"
#include "src/cxl/pool.h"
#include "src/devices/nic.h"
#include "src/msg/coalesce.h"
#include "src/netsim/network.h"
#include "src/sim/poll.h"

namespace cxlpool::core {

class VirtualNic {
 public:
  struct Config {
    uint32_t tx_entries = 256;
    uint32_t rx_entries = 256;
    // true: rings + completions live in shared CXL pool memory (pooled
    // mode); false: in the host's local DRAM (direct-attached mode).
    bool rings_in_cxl = true;
    // Post RX doorbells every N buffers (MMIO amortization).
    uint32_t rx_doorbell_batch = 8;
    Nanos poll_min = 100;
    Nanos poll_max = 500;  // dedicated polling core (Junction-style)
  };

  struct RxEvent {
    uint32_t desc_idx = 0;
    uint32_t len = 0;
    uint64_t buf_addr = 0;
  };

  struct Stats {
    uint64_t tx_posted = 0;
    uint64_t rx_posted = 0;
    uint64_t rx_events = 0;
    uint64_t doorbell_writes = 0;
    uint64_t tx_stalls = 0;  // times SendFrame waited on a full ring
  };

  // Allocates ring memory per `config` and programs the NIC through
  // `mmio`. `host` is the host running the I/O stack, not necessarily the
  // NIC's home host.
  static sim::Task<Result<std::unique_ptr<VirtualNic>>> Create(
      cxl::HostAdapter& host, std::unique_ptr<MmioPath> mmio, Config config);

  // Queues one frame for transmission. The payload must already be
  // published at `buf_addr` (the stack's BufferPool handles payload
  // coherence). Blocks in simulated time while the TX ring is full.
  sim::Task<Status> SendFrame(netsim::MacAddr dst, uint64_t buf_addr, uint32_t len);

  // Fresh count of completed TX descriptors.
  sim::Task<Result<uint64_t>> TxCompleted();
  // Last observed completion count (no memory access).
  uint64_t tx_completed_cache() const { return tx_completed_cache_; }

  // Hands a receive buffer to the NIC. Doorbells are batched through a
  // msg::DoorbellCoalescer at config.rx_doorbell_batch; FlushRxDoorbell()
  // forces the pending value out.
  sim::Task<Status> PostRxBuffer(uint64_t buf_addr, uint32_t buf_len);
  sim::Task<Status> FlushRxDoorbell();
  // Batching/fold stats for the RX doorbell (rings, coalesced, ...).
  const msg::DoorbellCoalescer::Stats& rx_doorbell_stats() const {
    return rx_doorbell_.stats();
  }

  // Waits for the next received frame until `deadline` (absolute).
  sim::Task<Result<RxEvent>> PollRx(Nanos deadline);

  // Retargets this handle to a replacement physical NIC via a new MMIO
  // path. Ring memory is re-used; in-flight descriptors are discarded and
  // RX buffers must be re-posted by the caller.
  sim::Task<Status> Rebind(std::unique_ptr<MmioPath> mmio);

  PlacedMemory& memory() { return mem_; }
  const Config& config() const { return config_; }
  const Stats& stats() const { return stats_; }
  bool remote() const { return mmio_->is_remote(); }

  ~VirtualNic();

 private:
  VirtualNic(cxl::HostAdapter& host, std::unique_ptr<MmioPath> mmio, Config config);

  // Lays out rings within the allocated blob.
  void ComputeLayout(uint64_t base);
  // Programs ring registers + zeroes completion structures.
  sim::Task<Status> ProgramDevice();
  // Ring action behind rx_doorbell_: one MMIO write of the folded value.
  sim::Task<Status> RxDoorbellWrite(uint64_t value);

  cxl::HostAdapter& host_;
  std::unique_ptr<MmioPath> mmio_;
  Config config_;
  PlacedMemory mem_;
  sim::PollBackoff rx_backoff_;
  sim::PollBackoff tx_backoff_;

  // Memory layout.
  cxl::PoolSegment segment_;  // when rings_in_cxl
  uint64_t tx_ring_ = 0;
  uint64_t tx_cpl_ = 0;
  uint64_t rx_ring_ = 0;
  uint64_t rx_cpl_ = 0;

  // Driver-side ring state. tx_posted_ counts reserved slots; tx_ready_ is
  // the contiguous published prefix eligible for the doorbell.
  uint64_t tx_posted_ = 0;
  uint64_t tx_ready_ = 0;
  uint64_t tx_doorbell_sent_ = 0;
  std::set<uint64_t> tx_published_;  // out-of-order published slots
  uint64_t tx_completed_cache_ = 0;
  uint64_t rebind_generation_ = 0;
  uint64_t rx_posted_ = 0;
  uint64_t rx_cpl_next_ = 0;
  std::vector<uint64_t> rx_shadow_;  // ring idx -> posted buffer addr
  // RX doorbell MMIO writes, folded per rx_doorbell_batch. Watermark-only
  // (max_delay = 0): rings happen synchronously inside PostRxBuffer /
  // FlushRxDoorbell frames, so the `this` capture in the ring fn is safe.
  msg::DoorbellCoalescer rx_doorbell_;

  Stats stats_;
  bool owns_segment_ = false;
};

}  // namespace cxlpool::core

#endif  // SRC_CORE_VIRTUAL_NIC_H_
