// Rack: one-call assembly of a complete simulated rack — CXL pod, Ethernet
// fabric, per-host NICs/SSDs, optional shared accelerators, agents, and
// the pooling orchestrator. The examples, tests, and benchmark harnesses
// all build on this so experiment setup stays ~10 lines.
#ifndef SRC_CORE_RACK_H_
#define SRC_CORE_RACK_H_

#include <memory>
#include <vector>

#include "src/core/orchestrator.h"
#include "src/core/virtual_accel.h"
#include "src/core/virtual_nic.h"
#include "src/core/virtual_ssd.h"
#include "src/cxl/pod.h"
#include "src/devices/accel.h"
#include "src/devices/nic.h"
#include "src/devices/ssd.h"
#include "src/netsim/network.h"

namespace cxlpool::core {

struct RackConfig {
  cxl::CxlPodConfig pod;
  netsim::NetworkConfig net;
  int nics_per_host = 1;
  int ssds_per_host = 0;
  int accels = 0;           // shared accelerators, attached to accel_home
  int accel_home = 0;
  devices::NicConfig nic;
  devices::SsdConfig ssd;
  devices::AccelConfig accel;
  Orchestrator::Config orch;
  int orchestrator_home = 0;  // §4.2: runs on one of the pod's hosts
  // Shared observability bundle for the whole rack. When set it is
  // propagated into the orchestrator, every agent, and every device
  // config that has not already been given its own bundle.
  obs::Observability* obs = nullptr;
};

class Rack {
 public:
  // MACs are assigned as kMacBase + nic index.
  static constexpr netsim::MacAddr kMacBase = 0x100;

  Rack(sim::EventLoop& loop, const RackConfig& config);
  ~Rack();
  Rack(const Rack&) = delete;
  Rack& operator=(const Rack&) = delete;

  sim::EventLoop& loop() { return loop_; }
  cxl::CxlPod& pod() { return *pod_; }
  netsim::Network& network() { return *network_; }
  Orchestrator& orchestrator() { return *orchestrator_; }
  sim::StopToken& stop_token() { return stop_; }

  // Spawns agents' loops and the orchestrator services.
  void Start() { orchestrator_->Start(stop_); }
  // Signals every actor to wind down (drain the loop afterwards).
  void Shutdown() { stop_.Stop(); }

  int nic_count() const { return static_cast<int>(nics_.size()); }
  devices::Nic* nic(int i) { return nics_.at(i).get(); }
  devices::Nic* nic(PcieDeviceId id);
  int ssd_count() const { return static_cast<int>(ssds_.size()); }
  devices::Ssd* ssd(int i) { return ssds_.at(i).get(); }
  int accel_count() const { return static_cast<int>(accels_.size()); }
  devices::Accelerator* accel(int i) { return accels_.at(i).get(); }

  // Acquires a device through the orchestrator and opens the right MMIO
  // path for `user` in one step.
  struct Lease {
    Orchestrator::Assignment assignment;
    std::unique_ptr<MmioPath> mmio;
  };
  Result<Lease> AcquireDevice(HostId user, DeviceType type);

  // Acquire + create, the common case for NICs. The handle carries the
  // assignment so callers can wire failover and find the NIC's MAC.
  struct VirtualNicHandle {
    std::unique_ptr<VirtualNic> vnic;
    Orchestrator::Assignment assignment;
    netsim::MacAddr mac = 0;
  };
  sim::Task<Result<VirtualNicHandle>> CreateVirtualNic(HostId user,
                                                       VirtualNic::Config config);

 private:
  sim::EventLoop& loop_;
  RackConfig config_;
  std::unique_ptr<cxl::CxlPod> pod_;
  std::unique_ptr<netsim::Network> network_;
  std::unique_ptr<Orchestrator> orchestrator_;
  std::vector<std::unique_ptr<devices::Nic>> nics_;
  std::vector<std::unique_ptr<devices::Ssd>> ssds_;
  std::vector<std::unique_ptr<devices::Accelerator>> accels_;
  sim::StopToken stop_;
};

}  // namespace cxlpool::core

#endif  // SRC_CORE_RACK_H_
