#include "src/core/orchestrator.h"

#include <algorithm>
#include <cstdarg>

#include "src/common/check.h"
#include "src/sim/logger.h"

namespace cxlpool::core {

Orchestrator::Orchestrator(cxl::CxlPod& pod, HostId home, Config config)
    : pod_(pod), home_(home), config_(config), retry_policy_(config.retry) {
  RegisterMetrics();
}

void Orchestrator::RegisterMetrics() {
  obs::Registry& reg = metrics();
  // Quarantine accounting lives directly in the registry (the bespoke
  // Stats fields are gone); the rest of Stats exports through probes.
  quarantines_ = reg.GetCounter("orch.quarantines");
  quarantine_releases_ = reg.GetCounter("orch.quarantine_releases");
  quarantined_skips_ = reg.GetCounter("orch.quarantined_skips");
  breaker_opens_ = reg.GetCounter("orch.breaker_opens");
  reg.RegisterProbe("orch.acquires", {},
                    [this] { return static_cast<int64_t>(stats_.acquires); });
  reg.RegisterProbe("orch.local_hits", {},
                    [this] { return static_cast<int64_t>(stats_.local_hits); });
  reg.RegisterProbe("orch.failovers", {},
                    [this] { return static_cast<int64_t>(stats_.failovers); });
  reg.RegisterProbe("orch.rebalances", {},
                    [this] { return static_cast<int64_t>(stats_.rebalances); });
  reg.RegisterProbe("orch.reports_received", {}, [this] {
    return static_cast<int64_t>(stats_.reports_received);
  });
  reg.RegisterProbe("orch.host_deaths", {},
                    [this] { return static_cast<int64_t>(stats_.host_deaths); });
  reg.RegisterProbe("orch.host_reregistrations", {}, [this] {
    return static_cast<int64_t>(stats_.host_reregistrations);
  });
  reg.RegisterProbe("orch.leases_revoked", {}, [this] {
    return static_cast<int64_t>(stats_.leases_revoked);
  });
  reg.RegisterProbe("orch.abandoned_migrations", {}, [this] {
    return static_cast<int64_t>(stats_.abandoned_migrations);
  });
  reg.RegisterProbe("orch.suspects", {},
                    [this] { return static_cast<int64_t>(stats_.suspects); });
  reg.RegisterProbe("orch.suspect_recoveries", {}, [this] {
    return static_cast<int64_t>(stats_.suspect_recoveries);
  });
  reg.RegisterProbe("orch.condemned_by_quorum", {}, [this] {
    return static_cast<int64_t>(stats_.condemned_by_quorum);
  });
  reg.RegisterProbe("orch.condemned_by_ttl", {}, [this] {
    return static_cast<int64_t>(stats_.condemned_by_ttl);
  });
  reg.RegisterProbe("orch.fences_acked", {}, [this] {
    return static_cast<int64_t>(stats_.fences_acked);
  });
  reg.RegisterProbe("orch.fences_ttl_expired", {}, [this] {
    return static_cast<int64_t>(stats_.fences_ttl_expired);
  });
}

void Orchestrator::FlightNote(const char* category, const char* fmt, ...) {
  if (config_.obs == nullptr) {
    return;
  }
  va_list args;
  va_start(args, fmt);
  config_.obs->flight().NoteV(pod_.loop().now(), home_.value(), category, fmt,
                              args);
  va_end(args);
}

Result<Agent*> Orchestrator::AddAgent(cxl::HostAdapter& host) {
  if (agents_.contains(host.id())) {
    return AlreadyExists("agent already exists for host");
  }
  AgentEntry entry;
  Agent::Config agent_config = config_.agent;
  if (agent_config.obs == nullptr) {
    agent_config.obs = config_.obs;
  }
  // Split-brain safety: every orchestrated agent runs a lease TTL, so an
  // unacked fence may resolve once TTL + fence_margin elapses (by then the
  // agent has provably self-fenced). The stamped value must match the
  // orchestrator's wait horizon; an explicit per-agent TTL wins.
  if (agent_config.lease_ttl == 0 && config_.quorum_liveness) {
    agent_config.lease_ttl = config_.lease_ttl;
  }
  entry.lease_ttl = agent_config.lease_ttl;
  entry.agent = std::make_unique<Agent>(host, agent_config);

  ASSIGN_OR_RETURN(entry.report_channel,
                   msg::Channel::Create(pod_.pool(), host, pod_.host(home_)));
  ASSIGN_OR_RETURN(entry.control_channel,
                   msg::Channel::Create(pod_.pool(), pod_.host(home_), host));
  entry.control_client =
      std::make_unique<msg::RpcClient>(entry.control_channel->end_a());

  Agent* agent = entry.agent.get();
  agents_.emplace(host.id(), std::move(entry));
  return agent;
}

Agent* Orchestrator::agent(HostId host) {
  auto it = agents_.find(host);
  return it == agents_.end() ? nullptr : it->second.agent.get();
}

void Orchestrator::RegisterDevice(HostId home, pcie::PcieDevice* device,
                                  DeviceType type, Agent::UtilProbe util_probe) {
  Agent* a = agent(home);
  CXLPOOL_CHECK(a != nullptr);
  a->RegisterDevice(device, type, util_probe);
  DeviceRecord rec;
  rec.device = device;
  rec.type = type;
  rec.home = home;
  // One breaker per device, shared across every forwarded path to it. An
  // open trip is a flap: it rides the same quarantine/probation machinery
  // as watchdog FLR episodes instead of duplicating it.
  rec.breaker = std::make_unique<msg::CircuitBreaker>(config_.breaker);
  PcieDeviceId id = device->id();
  rec.breaker->OnOpen([this, id] {
    breaker_opens_->Inc();
    FlightNote("breaker", "dev=%u circuit breaker opened", id.value());
    NoteFlaps(id, 1);
  });
  metrics().RegisterProbe(
      "breaker.state", {{"device", std::to_string(id.value())}},
      [this, b = rec.breaker.get()] {
        return static_cast<int64_t>(b->state(pod_.loop().now()));
      });
  devices_.emplace(device->id(), std::move(rec));
}

void Orchestrator::Start(sim::StopToken& stop) {
  stop_ = &stop;
  // Quorum liveness runs on an agent-to-agent observation mesh: every
  // agent probes every peer over a dedicated channel and folds the
  // results into the peer_mask it reports. Wired before the serve loops
  // so the first reports already carry meaningful masks.
  if (config_.quorum_liveness) {
    for (auto& [a_id, a_entry] : agents_) {
      for (auto& [b_id, b_entry] : agents_) {
        if (a_id == b_id) {
          continue;
        }
        auto ch =
            msg::Channel::Create(pod_.pool(), pod_.host(a_id), pod_.host(b_id));
        if (!ch.ok()) {
          continue;
        }
        b_entry.agent->ServePeerProbe((*ch)->end_b(), stop);
        a_entry.agent->StartPeerProbe(b_id, (*ch)->end_a(), stop);
        peer_channels_.push_back(std::move(*ch));
      }
    }
  }
  for (auto& [host_id, entry] : agents_) {
    // Orchestrator-side report server. Supervised: a channel blip (link or
    // MHD fault) aborts the serve loop, which restarts after backoff.
    entry.report_server = std::make_unique<msg::RpcServer>(
        entry.report_channel->end_b(),
        [this](uint16_t m, std::span<const std::byte> p) {
          return HandleReport(m, p);
        });
    sim::Spawn(entry.report_server->ServeSupervised(stop));
    // Agent-side services.
    entry.agent->ServeControl(entry.control_channel->end_b(), stop);
    entry.agent->StartReporting(entry.report_channel->end_a(), stop);
    // A host is innocent until its first report window elapses.
    entry.last_report = pod_.loop().now();
  }
  if (config_.auto_rebalance) {
    sim::Spawn(RebalanceLoop(stop));
  }
  if (config_.liveness_timeout > 0) {
    sim::Spawn(LivenessLoop(stop));
  }
}

sim::Task<Result<std::vector<std::byte>>> Orchestrator::HandleReport(
    uint16_t method, std::span<const std::byte> payload) {
  if (method != kMethodReport) {
    co_return Unimplemented("unknown report method");
  }
  auto decoded = report_wire::Decode(payload);
  if (!decoded.ok()) {
    co_return decoded.status();
  }
  ++stats_.reports_received;
  Nanos now = pod_.loop().now();
  auto agent_it = agents_.find(decoded->reporter);
  if (agent_it != agents_.end()) {
    AgentEntry& entry = agent_it->second;
    entry.last_report = now;
    entry.peer_mask = decoded->peer_mask;
    switch (entry.liveness) {
      case AgentEntry::Liveness::kAlive:
        break;
      case AgentEntry::Liveness::kSuspect:
        // The suspect was merely slow/partitioned, not dead. It kept its
        // leases and its epochs, so no resync is needed — just lift the
        // fence on new grants.
        entry.liveness = AgentEntry::Liveness::kAlive;
        ++stats_.suspect_recoveries;
        FlightNote("liveness", "host=%u suspect recovered",
                   decoded->reporter.value());
        CXLPOOL_LOG(Info) << "host " << decoded->reporter
                          << " recovered from suspect";
        break;
      case AgentEntry::Liveness::kDead:
        // Clean re-registration: the crashed host is back. Its devices
        // become eligible again as healthy statuses arrive below; resync
        // the lease epochs its agent missed while dead.
        entry.liveness = AgentEntry::Liveness::kAlive;
        ++stats_.host_reregistrations;
        CXLPOOL_LOG(Info) << "host " << decoded->reporter
                          << " re-registered after crash";
        sim::Spawn(ResyncEpochs(decoded->reporter));
        break;
    }
  }
  for (const DeviceStatus& s : decoded->statuses) {
    auto it = devices_.find(s.device);
    if (it == devices_.end()) {
      continue;
    }
    DeviceRecord& rec = it->second;
    rec.utilization = s.utilization;
    rec.last_report = now;
    // Fold the agent's gray-fault episode counter into flap accounting.
    // The counter is monotonic; only the delta since the last report is
    // new information.
    uint32_t episode_delta = s.fault_episodes > rec.reported_fault_episodes
                                 ? s.fault_episodes - rec.reported_fault_episodes
                                 : 0;
    if (s.fault_episodes > rec.reported_fault_episodes) {
      rec.reported_fault_episodes = s.fault_episodes;
    }
    bool recovered = !rec.healthy && s.healthy;
    if (rec.healthy && !s.healthy) {
      rec.healthy = false;
      CXLPOOL_LOG(Info) << "device " << s.device << " reported unhealthy; "
                        << rec.lessees.size() << " lease(s) to migrate";
      // Fail over asynchronously; the report reply must not wait on it.
      sim::Spawn(MigrateLeases(s.device, /*failover=*/true));
    } else if (recovered) {
      rec.healthy = true;  // repaired; eligible for new leases
    }
    // One wedge episode surfaces twice: the FLR bumps fault_episodes AND
    // the device dips unhealthy then recovers. gray_recovery_pending makes
    // sure such an episode counts as ONE flap, while a pure fail-stop
    // repair cycle (no FLR involved) still counts through its recovery.
    uint32_t flaps = episode_delta;
    if (episode_delta > 0) {
      rec.gray_recovery_pending = true;
    }
    if (recovered) {
      if (rec.gray_recovery_pending) {
        rec.gray_recovery_pending = false;
      } else {
        ++flaps;
      }
    }
    if (flaps > 0) {
      AccumulateFlaps(s.device, rec, flaps);
    }
  }
  co_return std::vector<std::byte>{};
}

void Orchestrator::AccumulateFlaps(PcieDeviceId id, DeviceRecord& rec,
                                   uint32_t count) {
  if (config_.quarantine_flap_threshold == 0) {
    return;
  }
  rec.flap_count += count;
  if (rec.quarantined || rec.flap_count < config_.quarantine_flap_threshold) {
    return;
  }
  // Threshold crossed: the device flaps faster than its leases can
  // usefully live on it. Pull it from the allocatable pool for a
  // probation that doubles with every re-offense.
  rec.quarantined = true;
  rec.flap_count = 0;
  uint32_t shift = std::min<uint32_t>(rec.quarantine_level, 16);
  rec.probation_until =
      pod_.loop().now() + config_.quarantine_probation * (Nanos{1} << shift);
  ++rec.quarantine_level;
  quarantines_->Inc();
  FlightNote("quarantine", "dev=%u quarantined level=%u until=%lld",
             id.value(), rec.quarantine_level,
             static_cast<long long>(rec.probation_until));
  CXLPOOL_LOG(Warning) << "device " << id << " quarantined (level "
                       << rec.quarantine_level << ", probation until "
                       << rec.probation_until << "ns)";
  // Drain current lessees: a flapping device is worse than a loaded one.
  sim::Spawn(MigrateLeases(id, /*failover=*/true));
}

bool Orchestrator::CheckQuarantine(DeviceRecord& rec) {
  if (!rec.quarantined) {
    return false;
  }
  if (pod_.loop().now() < rec.probation_until) {
    return true;
  }
  // Probation served: offer the device again with a clean flap slate. The
  // level sticks, so a repeat offender earns a doubled sentence.
  rec.quarantined = false;
  rec.flap_count = 0;
  quarantine_releases_->Inc();
  return false;
}

void Orchestrator::NoteFlaps(PcieDeviceId device, uint32_t count) {
  auto it = devices_.find(device);
  if (it != devices_.end() && count > 0) {
    AccumulateFlaps(device, it->second, count);
  }
}

bool Orchestrator::InQuarantine(PcieDeviceId device) {
  auto it = devices_.find(device);
  return it != devices_.end() && CheckQuarantine(it->second);
}

bool Orchestrator::Grantable(const DeviceRecord& rec) const {
  if (rec.fence_pending) {
    return false;  // re-issue gate: old holder not yet provably fenced
  }
  auto it = agents_.find(rec.home);
  // Suspect homes are fenced: their devices are not offered until a
  // report proves the host is back (dead homes are also unhealthy, but
  // the liveness check here closes the window before that lands).
  return it == agents_.end() ||
         it->second.liveness == AgentEntry::Liveness::kAlive;
}

Orchestrator::DeviceRecord* Orchestrator::PickDevice(DeviceType type,
                                                     PcieDeviceId exclude) {
  DeviceRecord* best = nullptr;
  for (auto& [id, rec] : devices_) {
    if (id == exclude || !rec.healthy || rec.type != type ||
        !Grantable(rec)) {
      continue;
    }
    if (CheckQuarantine(rec)) {
      quarantined_skips_->Inc();
      continue;
    }
    if (best == nullptr || rec.utilization < best->utilization ||
        (rec.utilization == best->utilization &&
         rec.lessees.size() < best->lessees.size())) {
      best = &rec;
    }
  }
  return best;
}

uint32_t Orchestrator::suspect_count() const {
  uint32_t n = 0;
  for (const auto& [id, entry] : agents_) {
    if (entry.liveness == AgentEntry::Liveness::kSuspect) {
      ++n;
    }
  }
  return n;
}

bool Orchestrator::agent_alive(HostId host) const {
  auto it = agents_.find(host);
  return it != agents_.end() &&
         it->second.liveness != AgentEntry::Liveness::kDead;
}

Result<Orchestrator::Assignment> Orchestrator::Acquire(HostId user, DeviceType type) {
  ++stats_.acquires;
  auto agent_it = agents_.find(user);
  if (agent_it != agents_.end() &&
      agent_it->second.liveness != AgentEntry::Liveness::kAlive) {
    return FailedPrecondition(
        agent_it->second.liveness == AgentEntry::Liveness::kDead
            ? "requesting host is marked dead"
            : "requesting host is a liveness suspect");
  }
  // §4.2: "the orchestrator first checks if the host has a local PCIe
  // device that is below a load threshold."
  DeviceRecord* local_best = nullptr;
  PcieDeviceId local_id;
  for (auto& [id, rec] : devices_) {
    if (rec.type != type || !rec.healthy || rec.home != user ||
        !Grantable(rec)) {
      continue;
    }
    if (CheckQuarantine(rec)) {
      quarantined_skips_->Inc();
      continue;
    }
    if (rec.utilization < config_.local_threshold &&
        (local_best == nullptr || rec.utilization < local_best->utilization)) {
      local_best = &rec;
      local_id = id;
    }
  }
  if (local_best != nullptr) {
    local_best->lessees.push_back(user);
    ++stats_.local_hits;
    return Assignment{local_id, user, /*local=*/true};
  }
  // "If not, the orchestrator selects the least-utilized device in the pod."
  DeviceRecord* best = PickDevice(type, PcieDeviceId::Invalid());
  if (best == nullptr) {
    return ResourceExhausted("no healthy device of requested type");
  }
  best->lessees.push_back(user);
  return Assignment{best->device->id(), best->home, best->home == user};
}

Status Orchestrator::Release(HostId user, PcieDeviceId device) {
  auto it = devices_.find(device);
  if (it == devices_.end()) {
    return NotFound("unknown device");
  }
  auto& lessees = it->second.lessees;
  auto pos = std::find(lessees.begin(), lessees.end(), user);
  if (pos == lessees.end()) {
    return FailedPrecondition("host holds no lease on this device");
  }
  lessees.erase(pos);
  return OkStatus();
}

Result<std::unique_ptr<MmioPath>> Orchestrator::MakeMmioPath(HostId user,
                                                             PcieDeviceId device) {
  return MakeMmioPath(user, device, config_.mmio_client);
}

Result<std::unique_ptr<MmioPath>> Orchestrator::MakeMmioPath(
    HostId user, PcieDeviceId device, msg::RpcClient::Options client_options) {
  auto it = devices_.find(device);
  if (it == devices_.end()) {
    return NotFound("unknown device");
  }
  DeviceRecord& rec = it->second;
  if (rec.home == user) {
    return std::unique_ptr<MmioPath>(std::make_unique<LocalMmioPath>(rec.device));
  }
  if (stop_ == nullptr) {
    return FailedPrecondition("orchestrator not started");
  }
  Agent* home_agent = agent(rec.home);
  if (home_agent == nullptr) {
    return Internal("no agent on device home host");
  }
  ASSIGN_OR_RETURN(auto channel, msg::Channel::Create(pod_.pool(), pod_.host(user),
                                                      pod_.host(rec.home)));
  home_agent->ServeForwarding(channel->end_b(), *stop_);
  auto client = std::make_shared<msg::RpcClient>(channel->end_a(),
                                                 client_options);
  client->BindTracer(tracer());
  // Each path gets a unique nonzero client_id: the home agent's dedup
  // window is keyed on it, so a timed-out-then-retried posted write is
  // acknowledged exactly once even across path rebuilds.
  auto path = std::make_unique<ForwardedMmioPath>(
      client, device, rec.epoch, config_.rpc_timeout, pod_.loop(),
      ++next_path_client_id_, config_.mmio_retry);
  path->BindTracer(tracer(), user.value());
  path->BindBreaker(rec.breaker.get());
  forwarding_channels_.push_back(std::move(channel));
  forwarding_clients_.push_back(std::move(client));
  return std::unique_ptr<MmioPath>(std::move(path));
}

const Orchestrator::DeviceRecord* Orchestrator::record(PcieDeviceId device) const {
  auto it = devices_.find(device);
  return it == devices_.end() ? nullptr : &it->second;
}

sim::Task<> Orchestrator::MigrateLeases(PcieDeviceId from, bool failover) {
  auto it = devices_.find(from);
  if (it == devices_.end()) {
    co_return;
  }
  DeviceRecord& rec = it->second;
  std::vector<HostId> to_move;
  if (failover) {
    to_move = rec.lessees;  // everything must leave a failed device
  } else if (!rec.lessees.empty()) {
    to_move.push_back(rec.lessees.front());  // shed one lease per scan
  }
  if (to_move.empty()) {
    co_return;
  }

  // When every lease leaves the device, fence it: bump the epoch so
  // forwarded paths built under the old one get kAborted at the home
  // agent, and keep the device ungrantable until the agent acks the new
  // epoch (or the old lease TTL provably expires). Partial rebalances
  // keep the epoch: remaining lessees' paths stay valid.
  if (to_move.size() == rec.lessees.size()) {
    FenceDevice(from, rec);
  }

  for (HostId user : to_move) {
    auto pos = std::find(rec.lessees.begin(), rec.lessees.end(), user);
    if (pos == rec.lessees.end()) {
      continue;  // released concurrently
    }
    auto agent_it = agents_.find(user);
    if (agent_it == agents_.end() ||
        agent_it->second.liveness == AgentEntry::Liveness::kDead) {
      // The holder is dead: revoke instead of moving the lease with it.
      rec.lessees.erase(pos);
      ++stats_.leases_revoked;
      continue;
    }
    DeviceRecord* target = PickDevice(rec.type, from);
    // A candidate mid-fence becomes grantable once its fence resolves
    // (epoch ack, usually microseconds for an alive home); wait for that
    // instead of stranding the lease on a transient gate.
    for (int waited = 0; target == nullptr && waited < 64; ++waited) {
      bool fence_in_flight = false;
      for (auto& [other_id, other] : devices_) {
        if (other_id != from && other.type == rec.type && other.fence_pending) {
          fence_in_flight = true;
          break;
        }
      }
      if (!fence_in_flight) {
        break;
      }
      co_await sim::Delay(pod_.loop(), 20 * kMicrosecond);
      target = PickDevice(rec.type, from);
    }
    if (target == nullptr) {
      CXLPOOL_LOG(Warning) << "no replacement device for " << from
                           << "; lease on host " << user << " stranded";
      co_return;
    }
    // Re-find the lease: the lessee list may have changed while waiting
    // out a fence above.
    pos = std::find(rec.lessees.begin(), rec.lessees.end(), user);
    if (pos == rec.lessees.end()) {
      continue;
    }
    rec.lessees.erase(pos);
    target->lessees.push_back(user);

    auto resp = co_await retry_policy_.Call(
        *agent_it->second.control_client, kMethodMigrate,
        migrate_wire::Encode(from, target->device->id(), target->home),
        config_.rpc_timeout, pod_.loop(), {}, 0, msg::kPriorityControl);
    // Member reads after the await below are safe: the orchestrator is
    // constructed before the event loop runs and destroyed only after
    // loop.Run*() returns, so a frame suspended in the Call above can
    // never resume past Orchestrator teardown (frames parked at
    // Shutdown are dropped with the loop, not resumed).
    if (!resp.ok()) {
      ++stats_.abandoned_migrations;  // simlint: allow(member-read-after-await)
      CXLPOOL_LOG(Warning) << "migrate RPC to host " << user
                           << " abandoned after retries: " << resp.status();
      continue;
    }
    if (failover) {
      ++stats_.failovers;  // simlint: allow(member-read-after-await)
    } else {
      ++stats_.rebalances;  // simlint: allow(member-read-after-await)
    }
  }
}

uint32_t Orchestrator::CondemnationVotes(HostId host, Nanos now,
                                         uint32_t* fresh_observers) const {
  uint32_t fresh = 0;
  uint32_t votes = 0;
  for (const auto& [other_id, other] : agents_) {
    if (other_id == host ||
        other.liveness != AgentEntry::Liveness::kAlive ||
        now - other.last_report > config_.liveness_timeout) {
      continue;  // only fresh, alive peers get a vote
    }
    ++fresh;
    // A vote is an EXPLICIT cleared bit: an observer that never probed
    // this host reports all-ones and abstains (absence of evidence is not
    // a vote against).
    if (host.value() < 64 && (other.peer_mask & (1ull << host.value())) == 0) {
      ++votes;
    }
  }
  *fresh_observers = fresh;
  return votes;
}

sim::Task<> Orchestrator::LivenessLoop(sim::StopToken& stop) {
  while (!stop.stopped()) {
    co_await sim::Delay(pod_.loop(), config_.liveness_interval);
    Nanos now = pod_.loop().now();
    for (auto& [host_id, entry] : agents_) {
      if (entry.liveness == AgentEntry::Liveness::kDead) {
        continue;
      }
      Nanos staleness = now - entry.last_report;
      if (staleness <= config_.liveness_timeout) {
        continue;
      }
      if (!config_.quorum_liveness) {
        // Legacy probe-only mode: staleness alone condemns. A host that is
        // merely partitioned from the orchestrator gets overtaken here —
        // exactly the hole quorum mode closes.
        DeclareAgentDead(host_id, entry);
        continue;
      }
      if (entry.liveness == AgentEntry::Liveness::kAlive) {
        entry.liveness = AgentEntry::Liveness::kSuspect;
        ++stats_.suspects;
        FlightNote("liveness", "host=%u suspect (stale for %lld ns)",
                   host_id.value(), static_cast<long long>(staleness));
        CXLPOOL_LOG(Warning) << "host " << host_id << " suspect (" << staleness
                             << "ns since last report)";
      }
      // Condemnation is evaluated in the same sweep as the suspect
      // transition, so a genuinely crashed host (peers vote immediately)
      // still dies within the legacy detection budget.
      uint32_t fresh = 0;
      uint32_t votes = CondemnationVotes(host_id, now, &fresh);
      uint32_t needed = config_.condemn_quorum > 0 ? config_.condemn_quorum
                                                   : fresh / 2 + 1;
      if (fresh > 0 && votes >= needed) {
        ++stats_.condemned_by_quorum;
        DeclareAgentDead(host_id, entry);
        continue;
      }
      // No quorum (e.g. full partition that also splits the peers, or no
      // fresh observers at all): fall back to the lease TTL. Past
      // ttl + fence_margin the agent has provably self-fenced, so
      // condemning it cannot create a second writer.
      Nanos ttl = entry.lease_ttl > 0 ? entry.lease_ttl : config_.lease_ttl;
      if (ttl > 0 && staleness > ttl + config_.fence_margin) {
        ++stats_.condemned_by_ttl;
        DeclareAgentDead(host_id, entry);
      }
    }
  }
}

void Orchestrator::DeclareAgentDead(HostId host, AgentEntry& entry) {
  entry.liveness = AgentEntry::Liveness::kDead;
  ++stats_.host_deaths;
  FlightNote("liveness", "host=%u declared dead (stale for %lld ns)",
             host.value(),
             static_cast<long long>(pod_.loop().now() - entry.last_report));
  CXLPOOL_LOG(Warning) << "host " << host << " declared dead ("
                       << (pod_.loop().now() - entry.last_report)
                       << "ns since last report)";
  // Revoke every lease the dead host holds, pool-wide. Each revocation
  // fences its device: the "dead" holder may in fact be alive behind a
  // partition with writes still in flight, so the device must not be
  // granted again until its home agent acked the epoch bump (or the old
  // lease TTL has provably expired).
  for (auto& [dev_id, rec] : devices_) {
    size_t before = rec.lessees.size();
    std::erase(rec.lessees, host);
    size_t revoked = before - rec.lessees.size();
    if (revoked > 0) {
      stats_.leases_revoked += revoked;
      FenceDevice(dev_id, rec);
    }
  }
  // Its attached devices are unreachable until repair; fail over the leases
  // stranded on them.
  for (auto& [dev_id, rec] : devices_) {
    if (rec.home == host && rec.healthy) {
      rec.healthy = false;
      sim::Spawn(MigrateLeases(dev_id, /*failover=*/true));
    }
  }
}

void Orchestrator::FenceDevice(PcieDeviceId id, DeviceRecord& rec) {
  ++rec.epoch;
  rec.fence_pending = true;
  Nanos ttl = [&] {
    auto it = agents_.find(rec.home);
    if (it != agents_.end() && it->second.lease_ttl > 0) {
      return it->second.lease_ttl;
    }
    return config_.lease_ttl;
  }();
  // The deadline is measured from NOW, which is >= the home agent's last
  // report receipt — so waiting it out is a conservative proof that the
  // agent's own lease clock (renewed at most fence_margin after our
  // receipt timestamp) has expired.
  Nanos deadline = pod_.loop().now() + ttl + config_.fence_margin;
  FlightNote("fence", "dev=%u fencing at epoch=%llu", id.value(),
             static_cast<unsigned long long>(rec.epoch));
  if (stop_ == nullptr) {
    // Not started: no serve loops and no forwarded paths exist yet, so
    // there is no old holder to wait out — the bumped epoch alone fences.
    rec.fence_pending = false;
    return;
  }
  sim::Spawn(FenceLoop(id, rec.epoch, rec.home, deadline, *stop_));
}

sim::Task<> Orchestrator::FenceLoop(PcieDeviceId device, uint64_t epoch,
                                    HostId home, Nanos ttl_deadline,
                                    sim::StopToken& stop) {
  while (!stop.stopped()) {
    bool acked = false;
    auto it = agents_.find(home);
    bool home_dead = it == agents_.end() ||
                     it->second.liveness == AgentEntry::Liveness::kDead;
    if (!home_dead) {
      auto resp = co_await retry_policy_.Call(
          *it->second.control_client, kMethodEpoch,
          epoch_wire::Encode(device, epoch), config_.rpc_timeout, pod_.loop(),
          {}, 0, msg::kPriorityControl);
      acked = resp.ok();
    }
    // Member reads below each await are safe for the same reason as in
    // MigrateLeases: the orchestrator outlives the event loop.
    auto dev_it = devices_.find(device);
    if (dev_it == devices_.end()) {
      co_return;
    }
    DeviceRecord& rec = dev_it->second;
    if (rec.epoch != epoch) {
      co_return;  // superseded by a newer fence, which owns the gate now
    }
    Nanos now = pod_.loop().now();
    if (acked) {
      // The ack proves the agent drained every in-flight forwarded op
      // before installing the new epoch: no old-epoch op can ever apply.
      if (rec.fence_pending) {
        rec.fence_pending = false;
        ++stats_.fences_acked;
        FlightNote("fence", "dev=%u epoch=%llu fence acked", device.value(),
                   static_cast<unsigned long long>(epoch));
      }
      co_return;
    }
    if (now >= ttl_deadline) {
      if (rec.fence_pending) {
        rec.fence_pending = false;
        ++stats_.fences_ttl_expired;
        FlightNote("fence", "dev=%u epoch=%llu fence resolved by TTL expiry",
                   device.value(), static_cast<unsigned long long>(epoch));
        CXLPOOL_LOG(Warning)
            << "fence for device " << device << " resolved by TTL expiry; "
            << "home agent on host " << home << " never acked";
      }
      // Past the TTL the grant gate is open either way. Keep pushing only
      // while the home might be alive-but-partitioned: a suspect that
      // heals would otherwise resume applying under the OLD epoch until
      // its next push. A dead host re-learns epochs via ResyncEpochs.
      if (home_dead) {
        co_return;
      }
    }
    co_await sim::Delay(pod_.loop(), config_.liveness_interval);
  }
}

sim::Task<> Orchestrator::PushEpoch(HostId home, PcieDeviceId device,
                                    uint64_t epoch) {
  auto it = agents_.find(home);
  if (it == agents_.end() ||
      it->second.liveness == AgentEntry::Liveness::kDead) {
    co_return;  // resynced when the host re-registers
  }
  auto resp = co_await retry_policy_.Call(
      *it->second.control_client, kMethodEpoch,
      epoch_wire::Encode(device, epoch), config_.rpc_timeout, pod_.loop(), {},
      0, msg::kPriorityControl);
  if (!resp.ok()) {
    CXLPOOL_LOG(Warning) << "epoch push for device " << device << " to host "
                         << home << " failed: " << resp.status();
  }
}

sim::Task<> Orchestrator::ResyncEpochs(HostId host) {
  for (auto& [dev_id, rec] : devices_) {
    if (rec.home == host && rec.epoch != 0) {
      co_await PushEpoch(host, dev_id, rec.epoch);
    }
  }
}

sim::Task<> Orchestrator::RebalanceOnce() {
  std::vector<PcieDeviceId> overloaded;
  for (auto& [id, rec] : devices_) {
    if (!rec.healthy || rec.lessees.empty()) {
      continue;
    }
    if (rec.utilization <= config_.overload_threshold) {
      continue;
    }
    DeviceRecord* target = PickDevice(rec.type, id);
    // Only worth moving if a clearly less-loaded device exists, and never
    // drain a device below the target's lease count (utilization reports
    // lag; the count guard prevents ping-pong on stale numbers).
    if (target != nullptr && target->utilization + 0.2 < rec.utilization &&
        target->lessees.size() < rec.lessees.size()) {
      overloaded.push_back(id);
    }
  }
  for (PcieDeviceId id : overloaded) {
    co_await MigrateLeases(id, /*failover=*/false);
  }
}

sim::Task<> Orchestrator::RebalanceLoop(sim::StopToken& stop) {
  while (!stop.stopped()) {
    co_await sim::Delay(pod_.loop(), config_.rebalance_interval);
    co_await RebalanceOnce();
  }
}

}  // namespace cxlpool::core
