#include "src/core/orchestrator.h"

#include <algorithm>
#include <cstdarg>

#include "src/common/check.h"
#include "src/sim/logger.h"

namespace cxlpool::core {

Orchestrator::Orchestrator(cxl::CxlPod& pod, HostId home, Config config)
    : pod_(pod), home_(home), config_(config), retry_policy_(config.retry) {
  RegisterMetrics();
}

void Orchestrator::RegisterMetrics() {
  obs::Registry& reg = metrics();
  // Quarantine accounting lives directly in the registry (the bespoke
  // Stats fields are gone); the rest of Stats exports through probes.
  quarantines_ = reg.GetCounter("orch.quarantines");
  quarantine_releases_ = reg.GetCounter("orch.quarantine_releases");
  quarantined_skips_ = reg.GetCounter("orch.quarantined_skips");
  breaker_opens_ = reg.GetCounter("orch.breaker_opens");
  reg.RegisterProbe("orch.acquires", {},
                    [this] { return static_cast<int64_t>(stats_.acquires); });
  reg.RegisterProbe("orch.local_hits", {},
                    [this] { return static_cast<int64_t>(stats_.local_hits); });
  reg.RegisterProbe("orch.failovers", {},
                    [this] { return static_cast<int64_t>(stats_.failovers); });
  reg.RegisterProbe("orch.rebalances", {},
                    [this] { return static_cast<int64_t>(stats_.rebalances); });
  reg.RegisterProbe("orch.reports_received", {}, [this] {
    return static_cast<int64_t>(stats_.reports_received);
  });
  reg.RegisterProbe("orch.host_deaths", {},
                    [this] { return static_cast<int64_t>(stats_.host_deaths); });
  reg.RegisterProbe("orch.host_reregistrations", {}, [this] {
    return static_cast<int64_t>(stats_.host_reregistrations);
  });
  reg.RegisterProbe("orch.leases_revoked", {}, [this] {
    return static_cast<int64_t>(stats_.leases_revoked);
  });
  reg.RegisterProbe("orch.abandoned_migrations", {}, [this] {
    return static_cast<int64_t>(stats_.abandoned_migrations);
  });
}

void Orchestrator::FlightNote(const char* category, const char* fmt, ...) {
  if (config_.obs == nullptr) {
    return;
  }
  va_list args;
  va_start(args, fmt);
  config_.obs->flight().NoteV(pod_.loop().now(), home_.value(), category, fmt,
                              args);
  va_end(args);
}

Result<Agent*> Orchestrator::AddAgent(cxl::HostAdapter& host) {
  if (agents_.contains(host.id())) {
    return AlreadyExists("agent already exists for host");
  }
  AgentEntry entry;
  Agent::Config agent_config = config_.agent;
  if (agent_config.obs == nullptr) {
    agent_config.obs = config_.obs;
  }
  entry.agent = std::make_unique<Agent>(host, agent_config);

  ASSIGN_OR_RETURN(entry.report_channel,
                   msg::Channel::Create(pod_.pool(), host, pod_.host(home_)));
  ASSIGN_OR_RETURN(entry.control_channel,
                   msg::Channel::Create(pod_.pool(), pod_.host(home_), host));
  entry.control_client =
      std::make_unique<msg::RpcClient>(entry.control_channel->end_a());

  Agent* agent = entry.agent.get();
  agents_.emplace(host.id(), std::move(entry));
  return agent;
}

Agent* Orchestrator::agent(HostId host) {
  auto it = agents_.find(host);
  return it == agents_.end() ? nullptr : it->second.agent.get();
}

void Orchestrator::RegisterDevice(HostId home, pcie::PcieDevice* device,
                                  DeviceType type, Agent::UtilProbe util_probe) {
  Agent* a = agent(home);
  CXLPOOL_CHECK(a != nullptr);
  a->RegisterDevice(device, type, util_probe);
  DeviceRecord rec;
  rec.device = device;
  rec.type = type;
  rec.home = home;
  // One breaker per device, shared across every forwarded path to it. An
  // open trip is a flap: it rides the same quarantine/probation machinery
  // as watchdog FLR episodes instead of duplicating it.
  rec.breaker = std::make_unique<msg::CircuitBreaker>(config_.breaker);
  PcieDeviceId id = device->id();
  rec.breaker->OnOpen([this, id] {
    breaker_opens_->Inc();
    FlightNote("breaker", "dev=%u circuit breaker opened", id.value());
    NoteFlaps(id, 1);
  });
  metrics().RegisterProbe(
      "breaker.state", {{"device", std::to_string(id.value())}},
      [this, b = rec.breaker.get()] {
        return static_cast<int64_t>(b->state(pod_.loop().now()));
      });
  devices_.emplace(device->id(), std::move(rec));
}

void Orchestrator::Start(sim::StopToken& stop) {
  stop_ = &stop;
  for (auto& [host_id, entry] : agents_) {
    // Orchestrator-side report server. Supervised: a channel blip (link or
    // MHD fault) aborts the serve loop, which restarts after backoff.
    entry.report_server = std::make_unique<msg::RpcServer>(
        entry.report_channel->end_b(),
        [this](uint16_t m, std::span<const std::byte> p) {
          return HandleReport(m, p);
        });
    sim::Spawn(entry.report_server->ServeSupervised(stop));
    // Agent-side services.
    entry.agent->ServeControl(entry.control_channel->end_b(), stop);
    entry.agent->StartReporting(entry.report_channel->end_a(), stop);
    // A host is innocent until its first report window elapses.
    entry.last_report = pod_.loop().now();
  }
  if (config_.auto_rebalance) {
    sim::Spawn(RebalanceLoop(stop));
  }
  if (config_.liveness_timeout > 0) {
    sim::Spawn(LivenessLoop(stop));
  }
}

sim::Task<Result<std::vector<std::byte>>> Orchestrator::HandleReport(
    uint16_t method, std::span<const std::byte> payload) {
  if (method != kMethodReport) {
    co_return Unimplemented("unknown report method");
  }
  auto decoded = report_wire::Decode(payload);
  if (!decoded.ok()) {
    co_return decoded.status();
  }
  ++stats_.reports_received;
  Nanos now = pod_.loop().now();
  auto agent_it = agents_.find(decoded->first);
  if (agent_it != agents_.end()) {
    AgentEntry& entry = agent_it->second;
    entry.last_report = now;
    if (!entry.alive) {
      // Clean re-registration: the crashed host is back. Its devices become
      // eligible again as healthy statuses arrive below; resync the lease
      // epochs its agent missed while dead.
      entry.alive = true;
      ++stats_.host_reregistrations;
      CXLPOOL_LOG(Info) << "host " << decoded->first
                        << " re-registered after crash";
      sim::Spawn(ResyncEpochs(decoded->first));
    }
  }
  for (const DeviceStatus& s : decoded->second) {
    auto it = devices_.find(s.device);
    if (it == devices_.end()) {
      continue;
    }
    DeviceRecord& rec = it->second;
    rec.utilization = s.utilization;
    rec.last_report = now;
    // Fold the agent's gray-fault episode counter into flap accounting.
    // The counter is monotonic; only the delta since the last report is
    // new information.
    uint32_t episode_delta = s.fault_episodes > rec.reported_fault_episodes
                                 ? s.fault_episodes - rec.reported_fault_episodes
                                 : 0;
    if (s.fault_episodes > rec.reported_fault_episodes) {
      rec.reported_fault_episodes = s.fault_episodes;
    }
    bool recovered = !rec.healthy && s.healthy;
    if (rec.healthy && !s.healthy) {
      rec.healthy = false;
      CXLPOOL_LOG(Info) << "device " << s.device << " reported unhealthy; "
                        << rec.lessees.size() << " lease(s) to migrate";
      // Fail over asynchronously; the report reply must not wait on it.
      sim::Spawn(MigrateLeases(s.device, /*failover=*/true));
    } else if (recovered) {
      rec.healthy = true;  // repaired; eligible for new leases
    }
    // One wedge episode surfaces twice: the FLR bumps fault_episodes AND
    // the device dips unhealthy then recovers. gray_recovery_pending makes
    // sure such an episode counts as ONE flap, while a pure fail-stop
    // repair cycle (no FLR involved) still counts through its recovery.
    uint32_t flaps = episode_delta;
    if (episode_delta > 0) {
      rec.gray_recovery_pending = true;
    }
    if (recovered) {
      if (rec.gray_recovery_pending) {
        rec.gray_recovery_pending = false;
      } else {
        ++flaps;
      }
    }
    if (flaps > 0) {
      AccumulateFlaps(s.device, rec, flaps);
    }
  }
  co_return std::vector<std::byte>{};
}

void Orchestrator::AccumulateFlaps(PcieDeviceId id, DeviceRecord& rec,
                                   uint32_t count) {
  if (config_.quarantine_flap_threshold == 0) {
    return;
  }
  rec.flap_count += count;
  if (rec.quarantined || rec.flap_count < config_.quarantine_flap_threshold) {
    return;
  }
  // Threshold crossed: the device flaps faster than its leases can
  // usefully live on it. Pull it from the allocatable pool for a
  // probation that doubles with every re-offense.
  rec.quarantined = true;
  rec.flap_count = 0;
  uint32_t shift = std::min<uint32_t>(rec.quarantine_level, 16);
  rec.probation_until =
      pod_.loop().now() + config_.quarantine_probation * (Nanos{1} << shift);
  ++rec.quarantine_level;
  quarantines_->Inc();
  FlightNote("quarantine", "dev=%u quarantined level=%u until=%lld",
             id.value(), rec.quarantine_level,
             static_cast<long long>(rec.probation_until));
  CXLPOOL_LOG(Warning) << "device " << id << " quarantined (level "
                       << rec.quarantine_level << ", probation until "
                       << rec.probation_until << "ns)";
  // Drain current lessees: a flapping device is worse than a loaded one.
  sim::Spawn(MigrateLeases(id, /*failover=*/true));
}

bool Orchestrator::CheckQuarantine(DeviceRecord& rec) {
  if (!rec.quarantined) {
    return false;
  }
  if (pod_.loop().now() < rec.probation_until) {
    return true;
  }
  // Probation served: offer the device again with a clean flap slate. The
  // level sticks, so a repeat offender earns a doubled sentence.
  rec.quarantined = false;
  rec.flap_count = 0;
  quarantine_releases_->Inc();
  return false;
}

void Orchestrator::NoteFlaps(PcieDeviceId device, uint32_t count) {
  auto it = devices_.find(device);
  if (it != devices_.end() && count > 0) {
    AccumulateFlaps(device, it->second, count);
  }
}

bool Orchestrator::InQuarantine(PcieDeviceId device) {
  auto it = devices_.find(device);
  return it != devices_.end() && CheckQuarantine(it->second);
}

Orchestrator::DeviceRecord* Orchestrator::PickDevice(DeviceType type,
                                                     PcieDeviceId exclude) {
  DeviceRecord* best = nullptr;
  for (auto& [id, rec] : devices_) {
    if (id == exclude || !rec.healthy || rec.type != type) {
      continue;
    }
    if (CheckQuarantine(rec)) {
      quarantined_skips_->Inc();
      continue;
    }
    if (best == nullptr || rec.utilization < best->utilization ||
        (rec.utilization == best->utilization &&
         rec.lessees.size() < best->lessees.size())) {
      best = &rec;
    }
  }
  return best;
}

bool Orchestrator::agent_alive(HostId host) const {
  auto it = agents_.find(host);
  return it != agents_.end() && it->second.alive;
}

Result<Orchestrator::Assignment> Orchestrator::Acquire(HostId user, DeviceType type) {
  ++stats_.acquires;
  auto agent_it = agents_.find(user);
  if (agent_it != agents_.end() && !agent_it->second.alive) {
    return FailedPrecondition("requesting host is marked dead");
  }
  // §4.2: "the orchestrator first checks if the host has a local PCIe
  // device that is below a load threshold."
  DeviceRecord* local_best = nullptr;
  PcieDeviceId local_id;
  for (auto& [id, rec] : devices_) {
    if (rec.type != type || !rec.healthy || rec.home != user) {
      continue;
    }
    if (CheckQuarantine(rec)) {
      quarantined_skips_->Inc();
      continue;
    }
    if (rec.utilization < config_.local_threshold &&
        (local_best == nullptr || rec.utilization < local_best->utilization)) {
      local_best = &rec;
      local_id = id;
    }
  }
  if (local_best != nullptr) {
    local_best->lessees.push_back(user);
    ++stats_.local_hits;
    return Assignment{local_id, user, /*local=*/true};
  }
  // "If not, the orchestrator selects the least-utilized device in the pod."
  DeviceRecord* best = PickDevice(type, PcieDeviceId::Invalid());
  if (best == nullptr) {
    return ResourceExhausted("no healthy device of requested type");
  }
  best->lessees.push_back(user);
  return Assignment{best->device->id(), best->home, best->home == user};
}

Status Orchestrator::Release(HostId user, PcieDeviceId device) {
  auto it = devices_.find(device);
  if (it == devices_.end()) {
    return NotFound("unknown device");
  }
  auto& lessees = it->second.lessees;
  auto pos = std::find(lessees.begin(), lessees.end(), user);
  if (pos == lessees.end()) {
    return FailedPrecondition("host holds no lease on this device");
  }
  lessees.erase(pos);
  return OkStatus();
}

Result<std::unique_ptr<MmioPath>> Orchestrator::MakeMmioPath(HostId user,
                                                             PcieDeviceId device) {
  return MakeMmioPath(user, device, config_.mmio_client);
}

Result<std::unique_ptr<MmioPath>> Orchestrator::MakeMmioPath(
    HostId user, PcieDeviceId device, msg::RpcClient::Options client_options) {
  auto it = devices_.find(device);
  if (it == devices_.end()) {
    return NotFound("unknown device");
  }
  DeviceRecord& rec = it->second;
  if (rec.home == user) {
    return std::unique_ptr<MmioPath>(std::make_unique<LocalMmioPath>(rec.device));
  }
  if (stop_ == nullptr) {
    return FailedPrecondition("orchestrator not started");
  }
  Agent* home_agent = agent(rec.home);
  if (home_agent == nullptr) {
    return Internal("no agent on device home host");
  }
  ASSIGN_OR_RETURN(auto channel, msg::Channel::Create(pod_.pool(), pod_.host(user),
                                                      pod_.host(rec.home)));
  home_agent->ServeForwarding(channel->end_b(), *stop_);
  auto client = std::make_shared<msg::RpcClient>(channel->end_a(),
                                                 client_options);
  client->BindTracer(tracer());
  // Each path gets a unique nonzero client_id: the home agent's dedup
  // window is keyed on it, so a timed-out-then-retried posted write is
  // acknowledged exactly once even across path rebuilds.
  auto path = std::make_unique<ForwardedMmioPath>(
      client, device, rec.epoch, config_.rpc_timeout, pod_.loop(),
      ++next_path_client_id_, config_.mmio_retry);
  path->BindTracer(tracer(), user.value());
  path->BindBreaker(rec.breaker.get());
  forwarding_channels_.push_back(std::move(channel));
  forwarding_clients_.push_back(std::move(client));
  return std::unique_ptr<MmioPath>(std::move(path));
}

const Orchestrator::DeviceRecord* Orchestrator::record(PcieDeviceId device) const {
  auto it = devices_.find(device);
  return it == devices_.end() ? nullptr : &it->second;
}

sim::Task<> Orchestrator::MigrateLeases(PcieDeviceId from, bool failover) {
  auto it = devices_.find(from);
  if (it == devices_.end()) {
    co_return;
  }
  DeviceRecord& rec = it->second;
  std::vector<HostId> to_move;
  if (failover) {
    to_move = rec.lessees;  // everything must leave a failed device
  } else if (!rec.lessees.empty()) {
    to_move.push_back(rec.lessees.front());  // shed one lease per scan
  }
  if (to_move.empty()) {
    co_return;
  }

  // When every lease leaves the device, bump its epoch first so forwarded
  // paths built under the old one get kAborted at the home agent instead of
  // touching a device their holder no longer leases. Partial rebalances
  // keep the epoch: remaining lessees' paths stay valid.
  if (to_move.size() == rec.lessees.size()) {
    ++rec.epoch;
    co_await PushEpoch(rec.home, from, rec.epoch);
  }

  for (HostId user : to_move) {
    auto pos = std::find(rec.lessees.begin(), rec.lessees.end(), user);
    if (pos == rec.lessees.end()) {
      continue;  // released concurrently
    }
    auto agent_it = agents_.find(user);
    if (agent_it == agents_.end() || !agent_it->second.alive) {
      // The holder is dead: revoke instead of moving the lease with it.
      rec.lessees.erase(pos);
      ++stats_.leases_revoked;
      continue;
    }
    DeviceRecord* target = PickDevice(rec.type, from);
    if (target == nullptr) {
      CXLPOOL_LOG(Warning) << "no replacement device for " << from
                           << "; lease on host " << user << " stranded";
      co_return;
    }
    rec.lessees.erase(pos);
    target->lessees.push_back(user);

    auto resp = co_await retry_policy_.Call(
        *agent_it->second.control_client, kMethodMigrate,
        migrate_wire::Encode(from, target->device->id(), target->home),
        config_.rpc_timeout, pod_.loop(), {}, 0, msg::kPriorityControl);
    // Member reads after the await below are safe: the orchestrator is
    // constructed before the event loop runs and destroyed only after
    // loop.Run*() returns, so a frame suspended in the Call above can
    // never resume past Orchestrator teardown (frames parked at
    // Shutdown are dropped with the loop, not resumed).
    if (!resp.ok()) {
      ++stats_.abandoned_migrations;  // simlint: allow(member-read-after-await)
      CXLPOOL_LOG(Warning) << "migrate RPC to host " << user
                           << " abandoned after retries: " << resp.status();
      continue;
    }
    if (failover) {
      ++stats_.failovers;  // simlint: allow(member-read-after-await)
    } else {
      ++stats_.rebalances;  // simlint: allow(member-read-after-await)
    }
  }
}

sim::Task<> Orchestrator::LivenessLoop(sim::StopToken& stop) {
  while (!stop.stopped()) {
    co_await sim::Delay(pod_.loop(), config_.liveness_interval);
    Nanos now = pod_.loop().now();
    for (auto& [host_id, entry] : agents_) {
      if (entry.alive && now - entry.last_report > config_.liveness_timeout) {
        DeclareAgentDead(host_id, entry);
      }
    }
  }
}

void Orchestrator::DeclareAgentDead(HostId host, AgentEntry& entry) {
  entry.alive = false;
  ++stats_.host_deaths;
  FlightNote("liveness", "host=%u declared dead (stale for %lld ns)",
             host.value(),
             static_cast<long long>(pod_.loop().now() - entry.last_report));
  CXLPOOL_LOG(Warning) << "host " << host << " declared dead ("
                       << (pod_.loop().now() - entry.last_report)
                       << "ns since last report)";
  // Revoke every lease the dead host holds, pool-wide.
  for (auto& [dev_id, rec] : devices_) {
    size_t before = rec.lessees.size();
    std::erase(rec.lessees, host);
    stats_.leases_revoked += before - rec.lessees.size();
  }
  // Its attached devices are unreachable until repair; fail over the leases
  // stranded on them.
  for (auto& [dev_id, rec] : devices_) {
    if (rec.home == host && rec.healthy) {
      rec.healthy = false;
      sim::Spawn(MigrateLeases(dev_id, /*failover=*/true));
    }
  }
}

sim::Task<> Orchestrator::PushEpoch(HostId home, PcieDeviceId device,
                                    uint64_t epoch) {
  auto it = agents_.find(home);
  if (it == agents_.end() || !it->second.alive) {
    co_return;  // resynced when the host re-registers
  }
  auto resp = co_await retry_policy_.Call(
      *it->second.control_client, kMethodEpoch,
      epoch_wire::Encode(device, epoch), config_.rpc_timeout, pod_.loop(), {},
      0, msg::kPriorityControl);
  if (!resp.ok()) {
    CXLPOOL_LOG(Warning) << "epoch push for device " << device << " to host "
                         << home << " failed: " << resp.status();
  }
}

sim::Task<> Orchestrator::ResyncEpochs(HostId host) {
  for (auto& [dev_id, rec] : devices_) {
    if (rec.home == host && rec.epoch != 0) {
      co_await PushEpoch(host, dev_id, rec.epoch);
    }
  }
}

sim::Task<> Orchestrator::RebalanceOnce() {
  std::vector<PcieDeviceId> overloaded;
  for (auto& [id, rec] : devices_) {
    if (!rec.healthy || rec.lessees.empty()) {
      continue;
    }
    if (rec.utilization <= config_.overload_threshold) {
      continue;
    }
    DeviceRecord* target = PickDevice(rec.type, id);
    // Only worth moving if a clearly less-loaded device exists, and never
    // drain a device below the target's lease count (utilization reports
    // lag; the count guard prevents ping-pong on stale numbers).
    if (target != nullptr && target->utilization + 0.2 < rec.utilization &&
        target->lessees.size() < rec.lessees.size()) {
      overloaded.push_back(id);
    }
  }
  for (PcieDeviceId id : overloaded) {
    co_await MigrateLeases(id, /*failover=*/false);
  }
}

sim::Task<> Orchestrator::RebalanceLoop(sim::StopToken& stop) {
  while (!stop.stopped()) {
    co_await sim::Delay(pod_.loop(), config_.rebalance_interval);
    co_await RebalanceOnce();
  }
}

}  // namespace cxlpool::core
