// MmioPath: how a host reaches a PCIe device's registers.
//
// A host can only MMIO devices behind its own root complex. For a pooled
// device on another host, the operation is forwarded over the CXL
// shared-memory channel to the owning host's agent, which performs the
// access locally (paper §4.1 "Event signaling and host-to-host
// communications"). The driver layer is identical either way — only the
// path differs, which is what makes device pooling transparent.
#ifndef SRC_CORE_MMIO_PATH_H_
#define SRC_CORE_MMIO_PATH_H_

#include <memory>

#include "src/common/status.h"
#include "src/msg/retry.h"
#include "src/msg/rpc.h"
#include "src/obs/trace.h"
#include "src/pcie/device.h"
#include "src/sim/task.h"

namespace cxlpool::core {

// RPC methods served by the owning host's agent.
inline constexpr uint16_t kMethodMmioWrite = 1;
inline constexpr uint16_t kMethodMmioRead = 2;

// `parent` (optional, zero = untraced) attaches the operation to an
// existing trace; a traced ForwardedMmioPath also mints a root when the
// caller passes none, so every forwarded op is traceable end to end.
// `deadline` (optional, absolute, 0 = none) is the operation's total
// budget, fixed at op origin: forwarded paths stamp it into the RPC wire
// header so every downstream hop — client queue, home-agent dequeue, the
// pre-BAR check — can shed the op the moment it is dead instead of doing
// dead work. Retries never extend it.
class MmioPath {
 public:
  virtual ~MmioPath() = default;
  virtual sim::Task<Status> Write(uint64_t reg, uint64_t value,
                                  obs::TraceContext parent = {},
                                  Nanos deadline = 0) = 0;
  virtual sim::Task<Result<uint64_t>> Read(uint64_t reg,
                                           obs::TraceContext parent = {},
                                           Nanos deadline = 0) = 0;
  // True when operations traverse the forwarding channel (diagnostics and
  // the E8 ablation).
  virtual bool is_remote() const = 0;
};

// Direct path: the device hangs off this host's root complex.
class LocalMmioPath : public MmioPath {
 public:
  explicit LocalMmioPath(pcie::PcieDevice* device) : device_(device) {}

  sim::Task<Status> Write(uint64_t reg, uint64_t value,
                          obs::TraceContext parent = {},
                          Nanos deadline = 0) override {
    (void)parent;    // local BARs need no cross-host stitching
    (void)deadline;  // a local BAR access cannot queue; nothing to shed
    return device_->MmioWrite(reg, value);
  }
  sim::Task<Result<uint64_t>> Read(uint64_t reg,
                                   obs::TraceContext parent = {},
                                   Nanos deadline = 0) override {
    (void)parent;
    (void)deadline;
    return device_->MmioRead(reg);
  }
  bool is_remote() const override { return false; }

 private:
  pcie::PcieDevice* device_;
};

// Forwarded path: ops travel over a shared-memory RPC channel to the agent
// on the device's home host.
//
// Every forwarded frame carries the lease epoch the path was built under.
// The orchestrator bumps a device's epoch whenever it migrates leases off
// it, so a stale path kept across a migration gets kAborted from the home
// agent instead of touching a device it no longer leases.
//
// Exactly-once: every frame also carries (client_id, seq). A timed-out
// attempt may already sit in the home agent's request ring — the agent
// WILL apply it — so the path retries through msg::RetryPolicy with the
// SAME seq, and the agent's per-(client, device) dedup window acknowledges
// the duplicate without re-applying the side effect (a doorbell rung twice
// is a protocol corruption, not a harmless hiccup). client_id 0 disables
// dedup (legacy frames); real paths get a nonzero unique id from the
// orchestrator.
class ForwardedMmioPath : public MmioPath {
 public:
  // `client` must outlive the path. `device` identifies the target at the
  // remote agent. `epoch` is the lease epoch this path is valid for.
  // `timeout` bounds the first attempt of each forwarded operation;
  // `retry` governs further attempts (escalate timeout_multiplier > 1 to
  // outwait slow-but-alive peers).
  ForwardedMmioPath(std::shared_ptr<msg::RpcClient> client, PcieDeviceId device,
                    uint64_t epoch, Nanos timeout, sim::EventLoop& loop,
                    uint64_t client_id = 0,
                    msg::RetryPolicy::Options retry = {})
      : client_(std::move(client)),
        device_(device),
        epoch_(epoch),
        timeout_(timeout),
        loop_(loop),
        client_id_(client_id),
        retry_(retry) {}

  // Enables root mmio.write/mmio.read spans on this path. `host` labels
  // the spans with the client host issuing the ops.
  void BindTracer(obs::Tracer* tracer, uint32_t host) {
    tracer_ = tracer;
    trace_host_ = host;
  }

  // Shares the device's circuit breaker (owned by the orchestrator, one
  // per device): ops fail fast with kOverloaded while it is open, and
  // every final outcome feeds it. Null (default) = no breaker.
  void BindBreaker(msg::CircuitBreaker* breaker) { breaker_ = breaker; }

  sim::Task<Status> Write(uint64_t reg, uint64_t value,
                          obs::TraceContext parent = {},
                          Nanos deadline = 0) override;
  sim::Task<Result<uint64_t>> Read(uint64_t reg,
                                   obs::TraceContext parent = {},
                                   Nanos deadline = 0) override;
  bool is_remote() const override { return true; }
  uint64_t epoch() const { return epoch_; }
  uint64_t client_id() const { return client_id_; }
  const msg::RetryPolicy::Stats& retry_stats() const { return retry_.stats(); }
  // The underlying RPC client (benches drive control-priority probes over
  // the same channel as the data storm to prove they never starve).
  msg::RpcClient& rpc_client() { return *client_; }

 private:
  // Root span when untraced callers hit a traced path; child span when the
  // caller already carries a context (e.g. a queue-pair submit).
  obs::Span StartOpSpan(const char* name, obs::TraceContext parent);

  std::shared_ptr<msg::RpcClient> client_;
  PcieDeviceId device_;
  uint64_t epoch_;
  Nanos timeout_;
  sim::EventLoop& loop_;
  uint64_t client_id_;
  uint64_t next_seq_ = 0;  // assigned once per op; identical across retries
  msg::RetryPolicy retry_;
  msg::CircuitBreaker* breaker_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  uint32_t trace_host_ = 0;
};

// Encodes/serves the forwarded-MMIO wire format; used by ForwardedMmioPath
// and by the agent-side handler.
namespace mmio_wire {
std::vector<std::byte> EncodeWrite(PcieDeviceId device, uint64_t epoch,
                                   uint64_t client_id, uint64_t seq,
                                   uint64_t reg, uint64_t value);
std::vector<std::byte> EncodeRead(PcieDeviceId device, uint64_t epoch,
                                  uint64_t client_id, uint64_t seq,
                                  uint64_t reg);
struct Decoded {
  PcieDeviceId device;
  uint64_t epoch = 0;
  uint64_t client_id = 0;  // 0 = no dedup
  uint64_t seq = 0;        // per-client monotonic op number
  uint64_t reg = 0;
  uint64_t value = 0;  // writes only
};
Result<Decoded> Decode(std::span<const std::byte> payload, bool is_write);
}  // namespace mmio_wire

}  // namespace cxlpool::core

#endif  // SRC_CORE_MMIO_PATH_H_
