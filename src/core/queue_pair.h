// QueuePairDriver: generic host-side driver for submission/completion
// queue devices (the SSD and accelerator models share this shape, as real
// NVMe-like devices do). Placement and MMIO-path genericity work exactly
// as in VirtualNic: rings live in local DRAM or CXL pool memory, doorbells
// go direct or over the forwarding channel.
//
// Completion entries are 64 B: seq u64 | cookie u64 | status u16. Commands
// are 64 B with a u64 cookie at a fixed offset. Completions may arrive out
// of submission order; SubmitAndWait matches on cookie.
#ifndef SRC_CORE_QUEUE_PAIR_H_
#define SRC_CORE_QUEUE_PAIR_H_

#include <map>
#include <memory>
#include <set>

#include "src/core/mmio_path.h"
#include "src/core/placed_memory.h"
#include "src/cxl/pool.h"
#include "src/sim/poll.h"

namespace cxlpool::core {

class QueuePairDriver {
 public:
  struct Config {
    uint32_t entries = 64;
    bool rings_in_cxl = true;
    Nanos poll_min = 200;
    Nanos poll_max = 4 * kMicrosecond;
    // Device register map (device-specific values passed by the wrapper).
    uint64_t reset_reg = 0;
    uint64_t sq_base_reg = 0;
    uint64_t sq_size_reg = 0;
    uint64_t sq_doorbell_reg = 0;
    uint64_t cq_base_reg = 0;
    uint64_t cmd_size = 64;
    uint64_t cpl_size = 64;
    uint64_t cookie_offset = 32;
    // Optional tracer: every SubmitAndWait becomes a qp.submit_wait root
    // span whose context rides into the doorbell MMIO (and, for forwarded
    // paths, across the wire to the home agent).
    obs::Tracer* tracer = nullptr;
  };

  static sim::Task<Result<std::unique_ptr<QueuePairDriver>>> Create(
      cxl::HostAdapter& host, std::unique_ptr<MmioPath> mmio, Config config);

  // Stamps a fresh cookie into `cmd`, submits it, and waits for its
  // completion status until `deadline`.
  sim::Task<Result<uint16_t>> SubmitAndWait(std::span<std::byte> cmd, Nanos deadline);

  // Retarget to a replacement device (failover / migration).
  sim::Task<Status> Rebind(std::unique_ptr<MmioPath> mmio);

  uint64_t submitted() const { return sq_posted_; }
  uint64_t completed() const { return cq_next_; }
  bool remote() const { return mmio_->is_remote(); }
  PlacedMemory& memory() { return mem_; }

  ~QueuePairDriver();

 private:
  QueuePairDriver(cxl::HostAdapter& host, std::unique_ptr<MmioPath> mmio,
                  Config config);

  sim::Task<Status> ProgramDevice();
  // Consumes at most one completion entry; true if it consumed one.
  sim::Task<Result<bool>> PollCqOnce();

  cxl::HostAdapter& host_;
  std::unique_ptr<MmioPath> mmio_;
  Config config_;
  PlacedMemory mem_;
  sim::PollBackoff backoff_;

  cxl::PoolSegment segment_;
  bool owns_segment_ = false;
  uint64_t sq_base_ = 0;
  uint64_t cq_base_ = 0;

  uint64_t next_cookie_ = 1;
  uint64_t sq_posted_ = 0;   // reserved slots
  uint64_t sq_ready_ = 0;    // contiguous published prefix
  uint64_t sq_doorbell_sent_ = 0;
  std::set<uint64_t> sq_published_;
  uint64_t cq_next_ = 0;
  uint64_t in_flight_ = 0;
  bool polling_ = false;
  std::map<uint64_t, uint16_t> completed_;  // cookie -> status
};

}  // namespace cxlpool::core

#endif  // SRC_CORE_QUEUE_PAIR_H_
