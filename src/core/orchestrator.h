// Pooling orchestrator (paper §4.2): the management-plane singleton that
// runs "as a special management container on one of the hosts in the CXL
// pod". It keeps the device registry, allocates devices to hosts
// (local-below-threshold, else least-utilized), consumes agent health/
// utilization reports over CXL channels, and drives failover and load-
// balancing migrations through the agents.
#ifndef SRC_CORE_ORCHESTRATOR_H_
#define SRC_CORE_ORCHESTRATOR_H_

#include <map>
#include <memory>
#include <vector>

#include "src/core/agent.h"
#include "src/core/mmio_path.h"
#include "src/cxl/pod.h"
#include "src/msg/channel.h"
#include "src/msg/retry.h"

namespace cxlpool::core {

class Orchestrator {
 public:
  struct Config {
    // A local device under this utilization is preferred over any remote
    // one (§4.2 allocation policy).
    double local_threshold = 0.75;
    // Devices above this utilization shed leases during rebalancing.
    double overload_threshold = 0.85;
    bool auto_rebalance = false;
    Nanos rebalance_interval = 200 * kMicrosecond;
    Nanos rpc_timeout = 2 * kMillisecond;
    // An agent whose last report is staler than this is declared dead
    // (crashed host). <= 0 disables the liveness sweep.
    Nanos liveness_timeout = 300 * kMicrosecond;
    Nanos liveness_interval = 100 * kMicrosecond;
    // --- Quorum liveness + split-brain-safe fencing (ISSUE 9) ---
    // On: a stale agent is first marked kSuspect (fenced from new grants
    // and allocations; existing leases kept) and condemned only when a
    // quorum of fresh peers ALSO lost it (their reported peer_mask bit for
    // it is clear), or when its lease TTL + fence_margin has elapsed with
    // no report — by which point the agent has provably self-fenced. A
    // partitioned-from-the-orchestrator-but-alive host therefore survives
    // as a suspect instead of being overtaken. Off: legacy probe-only
    // behavior (condemn on report staleness alone).
    bool quorum_liveness = true;
    // Votes needed to condemn a suspect. 0 = majority of the fresh alive
    // observers (the OTHER agents whose own reports are current). With no
    // fresh observers, only the TTL path can condemn.
    uint32_t condemn_quorum = 0;
    // Lease TTL stamped into each agent whose own Config::lease_ttl is 0.
    // Also the orchestrator's wait horizon before an unacked fence
    // resolves. Must comfortably exceed the report cadence so healthy
    // agents never self-fence.
    Nanos lease_ttl = 800 * kMicrosecond;
    // Extra slack on top of lease_ttl before an unacked fence resolves by
    // TTL expiry. The agent renews its lease clock when the report
    // RESPONSE lands, up to one report rpc_timeout after the orchestrator
    // stamped the request's arrival — so this must be >= the agent's
    // report rpc_timeout for the expiry proof to hold.
    Nanos fence_margin = 500 * kMicrosecond;
    // Retry policy for control-plane RPCs (migrate, epoch pushes).
    msg::RetryPolicy::Options retry;
    // Retry policy handed to forwarded MMIO paths. Retries re-send the
    // SAME (client_id, seq) frame, so the home agent's dedup window turns
    // a timeout-triggered duplicate into an acknowledged no-op instead of
    // a double-applied doorbell.
    msg::RetryPolicy::Options mmio_retry;
    // Per-device circuit breaker shared by every forwarded MMIO path to
    // that device: consecutive transport failures (never kOverloaded —
    // push-back means the peer is alive) open it, open trips feed the
    // quarantine flap accounting via NoteFlaps. failure_threshold = 0
    // disables.
    msg::CircuitBreaker::Options breaker;
    // Client-side send-queue bound and pipelining depth for forwarded
    // MMIO paths (per (user host, device) path). Queue bound defaults
    // unbounded (legacy); max_inflight defaults to 8 so independent
    // producers on one path overlap their forwarded writes instead of
    // serializing on the round trip. Exactly-once dedup at the home agent
    // is keyed by (client_id, seq), not by arrival order, so pipelined
    // completion reordering is safe.
    msg::RpcClient::Options mmio_client{.max_inflight = 8};
    // Gray-failure quarantine: a device accumulating this many flaps
    // (watchdog FLR episodes + fail-stop repair cycles) is pulled from the
    // allocatable pool for an exponentially growing probation period.
    // 0 disables quarantine.
    uint32_t quarantine_flap_threshold = 3;
    // Base probation; doubles with every quarantine entry for the device.
    Nanos quarantine_probation = 2 * kMillisecond;
    // Shared observability bundle (null = standalone). When set, it is also
    // handed to every agent this orchestrator creates (unless the agent
    // config pins its own), forwarded MMIO paths get tracers, and all
    // orchestrator counters land in the shared registry.
    obs::Observability* obs = nullptr;
    Agent::Config agent;
  };

  struct Assignment {
    PcieDeviceId device;
    HostId home;     // host the device is physically attached to
    bool local = false;
  };

  struct DeviceRecord {
    pcie::PcieDevice* device = nullptr;
    DeviceType type = DeviceType::kNic;
    HostId home;
    bool healthy = true;
    double utilization = 0.0;
    std::vector<HostId> lessees;
    Nanos last_report = 0;
    // Bumped whenever leases migrate off this device; forwarded MMIO paths
    // built under an older epoch are rejected by the home agent.
    uint64_t epoch = 0;
    // --- Gray-failure quarantine state ---
    // High-water mark of the home agent's reported fault_episodes counter.
    uint32_t reported_fault_episodes = 0;
    // Flaps accumulated toward the quarantine threshold.
    uint32_t flap_count = 0;
    // Set when a gray episode (agent FLR) was folded in; suppresses
    // counting the subsequent healthy transition as a second flap.
    bool gray_recovery_pending = false;
    bool quarantined = false;
    Nanos probation_until = 0;
    // Quarantine entries so far; probation doubles with each one.
    uint32_t quarantine_level = 0;
    // Set while a lease-revoking epoch bump is in flight to the home
    // agent: the device must not be granted again until the new epoch is
    // ACKED (proof: the agent drains in-flight forwarded ops before
    // installing an epoch) or the old holder's lease TTL has provably
    // expired. This is the split-brain re-issue gate.
    bool fence_pending = false;
    // Shared by every forwarded path to this device (see Config::breaker);
    // owned here so it survives path rebuilds across migrations.
    std::unique_ptr<msg::CircuitBreaker> breaker;
  };

  // `home` is the host running the orchestrator container.
  Orchestrator(cxl::CxlPod& pod, HostId home, Config config);
  Orchestrator(const Orchestrator&) = delete;
  Orchestrator& operator=(const Orchestrator&) = delete;

  // Creates the agent for `host` plus its report/control channels, and
  // spawns the orchestrator-side servers. Call once per host, then Start().
  Result<Agent*> AddAgent(cxl::HostAdapter& host);
  Agent* agent(HostId host);

  // Registers a device with its owning agent and the global registry.
  void RegisterDevice(HostId home, pcie::PcieDevice* device, DeviceType type,
                      Agent::UtilProbe util_probe = nullptr);

  // Spawns reporting loops and (optionally) the rebalancer.
  void Start(sim::StopToken& stop);

  // --- Allocation (paper §4.2) ---
  Result<Assignment> Acquire(HostId user, DeviceType type);
  Status Release(HostId user, PcieDeviceId device);

  // Builds the MMIO path a `user` host needs for `device`: direct when
  // local, otherwise a fresh forwarding channel to the home agent. The
  // two-argument form uses Config::mmio_client for the forwarding RPC
  // client; the explicit form overrides it per path (benches compare
  // serialized max_inflight = 1 against pipelined depths this way).
  Result<std::unique_ptr<MmioPath>> MakeMmioPath(HostId user, PcieDeviceId device);
  Result<std::unique_ptr<MmioPath>> MakeMmioPath(HostId user, PcieDeviceId device,
                                                 msg::RpcClient::Options client_options);

  const DeviceRecord* record(PcieDeviceId device) const;
  const std::map<PcieDeviceId, DeviceRecord>& devices() const { return devices_; }
  // The device's circuit breaker (null for unknown devices). Tests and
  // benches assert on its state/stats.
  msg::CircuitBreaker* breaker(PcieDeviceId device) {
    auto it = devices_.find(device);
    return it == devices_.end() ? nullptr : it->second.breaker.get();
  }

  // False once the liveness sweep declared the host's agent dead; true
  // again after it re-registers by reporting. Suspects count as alive.
  bool agent_alive(HostId host) const;
  // Agents currently in the suspect (fenced-but-not-condemned) liveness
  // state. Chaos recovery probes gate on 0 to time partition healing.
  uint32_t suspect_count() const;

  // Feeds `count` flaps into a device's quarantine accounting, exactly as
  // if its home agent had reported that many new fault episodes. Test and
  // chaos-harness hook; production flaps arrive through HandleReport.
  void NoteFlaps(PcieDeviceId device, uint32_t count);
  // True while the device is serving a quarantine probation (expires it
  // lazily if the probation is over).
  bool InQuarantine(PcieDeviceId device);

  struct Stats {
    uint64_t acquires = 0;
    uint64_t local_hits = 0;  // acquisitions satisfied by a local device
    uint64_t failovers = 0;
    uint64_t rebalances = 0;
    uint64_t reports_received = 0;
    uint64_t host_deaths = 0;            // liveness sweep declared an agent dead
    uint64_t host_reregistrations = 0;   // dead agent reported again
    uint64_t leases_revoked = 0;         // leases torn down (holder dead)
    uint64_t abandoned_migrations = 0;   // migrate RPC failed after retries
    // --- Quorum liveness + fencing (ISSUE 9) ---
    uint64_t suspects = 0;               // alive -> suspect transitions
    uint64_t suspect_recoveries = 0;     // suspect -> alive (report arrived)
    uint64_t condemned_by_quorum = 0;    // deaths confirmed by peer votes
    uint64_t condemned_by_ttl = 0;       // deaths confirmed by TTL expiry
    uint64_t fences_acked = 0;           // fences resolved by an epoch ack
    uint64_t fences_ttl_expired = 0;     // fences resolved by TTL expiry
  };
  const Stats& stats() const { return stats_; }
  const msg::RetryPolicy::Stats& retry_stats() const {
    return retry_policy_.stats();
  }

  // Registry this orchestrator reports into: the shared one from
  // Config::obs, or a private fallback so standalone construction (tests)
  // still has a home for every counter. Quarantine accounting lives here as
  // orch.quarantines / orch.quarantine_releases / orch.quarantined_skips.
  obs::Registry& metrics() {
    return config_.obs != nullptr ? config_.obs->metrics() : fallback_metrics_;
  }

  // Test hook: process one rebalance scan immediately.
  sim::Task<> RebalanceOnce();

 private:
  struct AgentEntry {
    // kAlive: reports are fresh. kSuspect: reports stale, but not yet
    // condemned — the host is fenced (no new grants, its devices are not
    // offered) while its existing leases are kept; the next report
    // recovers it. kDead: condemned by quorum, TTL, or legacy staleness.
    enum class Liveness { kAlive, kSuspect, kDead };
    std::unique_ptr<Agent> agent;
    std::unique_ptr<msg::Channel> report_channel;   // agent -> orch RPC
    std::unique_ptr<msg::Channel> control_channel;  // orch -> agent RPC
    std::unique_ptr<msg::RpcServer> report_server;
    std::unique_ptr<msg::RpcClient> control_client;
    Nanos last_report = 0;
    Liveness liveness = Liveness::kAlive;
    // Reachability bitmap from this agent's last report (bit h = it could
    // reach host h recently); all-ones before any report.
    uint64_t peer_mask = ~0ull;
    // The lease TTL this agent actually runs with (stamped in AddAgent).
    Nanos lease_ttl = 0;
  };

  sim::Task<Result<std::vector<std::byte>>> HandleReport(
      uint16_t method, std::span<const std::byte> payload);
  // Adds flaps to `rec`; enters quarantine at the threshold (drains the
  // device's leases, probation doubles per entry).
  void AccumulateFlaps(PcieDeviceId id, DeviceRecord& rec, uint32_t count);
  // Lazy-expiring quarantine check used by every allocation scan.
  bool CheckQuarantine(DeviceRecord& rec);
  // Picks the best healthy device of `type` excluding `exclude`; least
  // utilized wins. Returns nullptr if none.
  DeviceRecord* PickDevice(DeviceType type, PcieDeviceId exclude);
  // Migrates every lease on `from` to a replacement; used by both
  // failover (from is unhealthy) and rebalancing.
  sim::Task<> MigrateLeases(PcieDeviceId from, bool failover);
  sim::Task<> RebalanceLoop(sim::StopToken& stop);
  // Periodically sweeps report staleness. Quorum mode: stale agents turn
  // suspect, and a suspect is condemned only on peer votes or TTL expiry.
  // Legacy mode: stale agents are condemned directly.
  sim::Task<> LivenessLoop(sim::StopToken& stop);
  // Peer votes against `host`: fresh alive observers whose reported
  // peer_mask clears this host's bit.
  uint32_t CondemnationVotes(HostId host, Nanos now,
                             uint32_t* fresh_observers) const;
  // Revokes the dead host's leases, fails its home devices, and spawns
  // failover for the leases stranded on them.
  void DeclareAgentDead(HostId host, AgentEntry& entry);
  // Starts fencing `rec`: bumps its epoch, marks fence_pending, and spawns
  // FenceLoop to push the epoch to the home agent. The device stays
  // ungrantable until the push is acked or `ttl + fence_margin` elapses.
  void FenceDevice(PcieDeviceId id, DeviceRecord& rec);
  sim::Task<> FenceLoop(PcieDeviceId device, uint64_t epoch, HostId home,
                        Nanos ttl_deadline, sim::StopToken& stop);
  // True when `rec`'s home host currently offers leases (alive, not
  // suspect) and the device itself is not mid-fence.
  bool Grantable(const DeviceRecord& rec) const;
  // Pushes `epoch` for `device` to its home agent (retried; best-effort).
  sim::Task<> PushEpoch(HostId home, PcieDeviceId device, uint64_t epoch);
  // After a host re-registers, re-sends current epochs for its devices.
  sim::Task<> ResyncEpochs(HostId host);
  void RegisterMetrics();
  obs::Tracer* tracer() {
    return config_.obs != nullptr ? config_.obs->tracer() : nullptr;
  }
  void FlightNote(const char* category, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));

  cxl::CxlPod& pod_;
  HostId home_;
  Config config_;
  obs::Registry fallback_metrics_;
  // Registry-backed quarantine counters (cached handles; see metrics()).
  obs::Counter* quarantines_ = nullptr;
  obs::Counter* quarantine_releases_ = nullptr;
  obs::Counter* quarantined_skips_ = nullptr;
  obs::Counter* breaker_opens_ = nullptr;
  std::map<HostId, AgentEntry> agents_;
  std::map<PcieDeviceId, DeviceRecord> devices_;
  // Agent-to-agent probe channels (quorum liveness mesh), one per ordered
  // host pair, wired in Start().
  std::vector<std::unique_ptr<msg::Channel>> peer_channels_;
  std::vector<std::unique_ptr<msg::Channel>> forwarding_channels_;
  std::vector<std::shared_ptr<msg::RpcClient>> forwarding_clients_;
  sim::StopToken* stop_ = nullptr;
  msg::RetryPolicy retry_policy_;
  // Unique nonzero client_id per forwarded path, so the home agents'
  // dedup windows never alias two paths.
  uint64_t next_path_client_id_ = 0;
  Stats stats_;
};

}  // namespace cxlpool::core

#endif  // SRC_CORE_ORCHESTRATOR_H_
