#include "src/core/queue_pair.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/msg/wire.h"

namespace cxlpool::core {

using msg::wire::GetU16;
using msg::wire::GetU64;
using msg::wire::PutU64;

QueuePairDriver::QueuePairDriver(cxl::HostAdapter& host,
                                 std::unique_ptr<MmioPath> mmio, Config config)
    : host_(host),
      mmio_(std::move(mmio)),
      config_(config),
      mem_(host, config.rings_in_cxl),
      backoff_(config.poll_min, config.poll_max) {}

QueuePairDriver::~QueuePairDriver() {
  if (owns_segment_) {
    (void)host_.cxl_pool().Free(segment_);
  }
}

sim::Task<Result<std::unique_ptr<QueuePairDriver>>> QueuePairDriver::Create(
    cxl::HostAdapter& host, std::unique_ptr<MmioPath> mmio, Config config) {
  CXLPOOL_CHECK(config.entries >= 2);
  auto driver = std::unique_ptr<QueuePairDriver>(
      new QueuePairDriver(host, std::move(mmio), config));

  uint64_t bytes = static_cast<uint64_t>(config.entries) *
                   (config.cmd_size + config.cpl_size);
  if (config.rings_in_cxl) {
    auto seg = host.cxl_pool().Allocate(bytes);
    if (!seg.ok()) {
      co_return seg.status();
    }
    driver->segment_ = *seg;
    driver->owns_segment_ = true;
    driver->sq_base_ = seg->base;
  } else {
    auto addr = host.AllocateDram(bytes);
    if (!addr.ok()) {
      co_return addr.status();
    }
    driver->sq_base_ = *addr;
  }
  driver->cq_base_ =
      driver->sq_base_ + static_cast<uint64_t>(config.entries) * config.cmd_size;

  Status st = co_await driver->ProgramDevice();
  if (!st.ok()) {
    co_return st;
  }
  co_return std::move(driver);
}

sim::Task<Status> QueuePairDriver::ProgramDevice() {
  std::vector<std::byte> zeros(config_.cpl_size, std::byte{0});
  for (uint32_t i = 0; i < config_.entries; ++i) {
    CO_RETURN_IF_ERROR(co_await mem_.Publish(cq_base_ + i * config_.cpl_size, zeros));
  }
  CO_RETURN_IF_ERROR(co_await mmio_->Write(config_.reset_reg, 1));
  CO_RETURN_IF_ERROR(co_await mmio_->Write(config_.sq_base_reg, sq_base_));
  CO_RETURN_IF_ERROR(co_await mmio_->Write(config_.sq_size_reg, config_.entries));
  CO_RETURN_IF_ERROR(co_await mmio_->Write(config_.cq_base_reg, cq_base_));
  co_return OkStatus();
}

sim::Task<Result<bool>> QueuePairDriver::PollCqOnce() {
  uint64_t addr = cq_base_ + (cq_next_ % config_.entries) * config_.cpl_size;
  std::vector<std::byte> entry(config_.cpl_size);
  Status st = co_await mem_.ReadFresh(addr, entry);
  if (!st.ok()) {
    co_return st;
  }
  uint64_t seq = GetU64(entry.data());
  if (seq != cq_next_ + 1) {
    co_return false;
  }
  uint64_t cookie = GetU64(entry.data() + 8);
  uint16_t status = GetU16(entry.data() + 16);
  completed_[cookie] = status;
  ++cq_next_;
  CXLPOOL_CHECK(in_flight_ > 0);
  --in_flight_;
  co_return true;
}

sim::Task<Result<uint16_t>> QueuePairDriver::SubmitAndWait(std::span<std::byte> cmd,
                                                           Nanos deadline) {
  CXLPOOL_CHECK(cmd.size() == config_.cmd_size);
  // Flow control on the submission queue.
  while (in_flight_ >= config_.entries) {
    if (!polling_) {
      polling_ = true;
      auto got = co_await PollCqOnce();
      polling_ = false;
      if (!got.ok()) {
        co_return got.status();
      }
      if (*got) {
        continue;
      }
    }
    if (host_.loop().now() >= deadline) {
      co_return DeadlineExceeded("SQ full");
    }
    co_await sim::Delay(host_.loop(), backoff_.NextDelay());
  }

  uint64_t cookie = next_cookie_++;
  PutU64(cmd.data() + config_.cookie_offset, cookie);
  // Root span for this command's life: publish, doorbell (possibly
  // forwarded — the context rides the RPC wire), completion poll.
  obs::Span op = obs::MaybeStartTrace(config_.tracer, "qp.submit_wait",
                                      host_.id().value(), host_.loop().now());
  // Reserve the slot before suspending so concurrent submitters never
  // collide; the doorbell only covers the contiguous published prefix.
  uint64_t slot = sq_posted_++;
  ++in_flight_;
  uint64_t addr = sq_base_ + (slot % config_.entries) * config_.cmd_size;
  Status publish_st = co_await mem_.Publish(addr, cmd);
  if (!publish_st.ok()) {
    op.End(host_.loop().now());
    co_return publish_st;
  }
  sq_published_.insert(slot);
  while (sq_published_.contains(sq_ready_)) {
    sq_published_.erase(sq_ready_);
    ++sq_ready_;
  }
  if (sq_ready_ > sq_doorbell_sent_) {
    uint64_t value = sq_ready_;
    if (mem_.sw_coherence()) {
      // Ownership transfer: the doorbell hands the published SQ prefix to
      // the device, which will DMA-read it from the pool. Any dirty cached
      // command bytes at this instant would be invisible to the device.
      host_.NoteHandoff(sq_base_,
                        static_cast<uint64_t>(config_.entries) * config_.cmd_size,
                        "sq-doorbell");
    }
    // The doorbell inherits the command's absolute deadline: if it expires
    // in a queue along the forwarded path, every hop sheds it instead of
    // ringing a bell whose command the submitter has already given up on.
    Status bell_st = co_await mmio_->Write(config_.sq_doorbell_reg, value,
                                           op.context(), deadline);
    if (!bell_st.ok()) {
      op.End(host_.loop().now());
      co_return bell_st;
    }
    if (value > sq_doorbell_sent_) {
      sq_doorbell_sent_ = value;
    }
  }

  for (;;) {
    auto it = completed_.find(cookie);
    if (it != completed_.end()) {
      uint16_t status = it->second;
      completed_.erase(it);
      backoff_.Reset();
      op.End(host_.loop().now());
      co_return status;
    }
    if (host_.loop().now() >= deadline) {
      op.End(host_.loop().now());
      co_return DeadlineExceeded("command timed out");
    }
    if (!polling_) {
      polling_ = true;
      auto got = co_await PollCqOnce();
      polling_ = false;
      if (!got.ok()) {
        op.End(host_.loop().now());
        co_return got.status();
      }
      if (*got) {
        continue;  // something completed; re-check the map
      }
    }
    co_await sim::Delay(host_.loop(),
                        std::min(backoff_.NextDelay(), deadline - host_.loop().now()));
  }
}

sim::Task<Status> QueuePairDriver::Rebind(std::unique_ptr<MmioPath> mmio) {
  mmio_ = std::move(mmio);
  sq_posted_ = 0;
  sq_ready_ = 0;
  sq_doorbell_sent_ = 0;
  sq_published_.clear();
  cq_next_ = 0;
  in_flight_ = 0;
  completed_.clear();
  co_return co_await ProgramDevice();
}

}  // namespace cxlpool::core
