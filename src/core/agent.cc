#include "src/core/agent.h"

#include <algorithm>
#include <bit>
#include <cstdarg>

#include "src/common/check.h"
#include "src/devices/nic.h"
#include "src/msg/wire.h"

namespace cxlpool::core {

namespace report_wire {

std::vector<std::byte> Encode(HostId reporter, uint64_t peer_mask,
                              std::span<const DeviceStatus> statuses) {
  std::vector<std::byte> out;
  msg::wire::Writer w(&out);
  w.U32(reporter.value());
  w.U64(peer_mask);
  w.U32(static_cast<uint32_t>(statuses.size()));
  for (const DeviceStatus& s : statuses) {
    w.U32(s.device.value());
    w.U8(static_cast<uint8_t>(s.type));
    w.U8(s.healthy ? 1 : 0);
    w.U64(std::bit_cast<uint64_t>(s.utilization));
    w.U32(s.fault_episodes);
  }
  return out;
}

Result<Decoded> Decode(std::span<const std::byte> payload) {
  if (payload.size() < 16) {
    return InvalidArgument("short report frame");
  }
  msg::wire::Reader r(payload);
  Decoded d;
  d.reporter = HostId(r.U32());
  d.peer_mask = r.U64();
  uint32_t count = r.U32();
  // 64-bit arithmetic: a hostile/bit-flipped count near UINT32_MAX must
  // not wrap the product past the length check and CHECK-fail inside the
  // Reader (lossy links deliver exactly such frames).
  if (r.remaining() < static_cast<uint64_t>(count) * 18u) {
    return InvalidArgument("truncated report frame");
  }
  d.statuses.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    DeviceStatus s;
    s.device = PcieDeviceId(r.U32());
    s.type = static_cast<DeviceType>(r.U8());
    s.healthy = r.U8() != 0;
    s.utilization = std::bit_cast<double>(r.U64());
    s.fault_episodes = r.U32();
    d.statuses.push_back(s);
  }
  return d;
}

}  // namespace report_wire

namespace migrate_wire {

std::vector<std::byte> Encode(PcieDeviceId old_dev, PcieDeviceId new_dev,
                              HostId new_home) {
  std::vector<std::byte> out;
  msg::wire::Writer w(&out);
  w.U32(old_dev.value());
  w.U32(new_dev.value());
  w.U32(new_home.value());
  return out;
}

Result<Decoded> Decode(std::span<const std::byte> payload) {
  if (payload.size() < 12) {
    return InvalidArgument("short migrate frame");
  }
  msg::wire::Reader r(payload);
  Decoded d;
  d.old_dev = PcieDeviceId(r.U32());
  d.new_dev = PcieDeviceId(r.U32());
  d.new_home = HostId(r.U32());
  return d;
}

}  // namespace migrate_wire

namespace epoch_wire {

std::vector<std::byte> Encode(PcieDeviceId device, uint64_t epoch) {
  std::vector<std::byte> out;
  msg::wire::Writer w(&out);
  w.U32(device.value());
  w.U64(epoch);
  return out;
}

Result<Decoded> Decode(std::span<const std::byte> payload) {
  if (payload.size() < 12) {
    return InvalidArgument("short epoch frame");
  }
  msg::wire::Reader r(payload);
  Decoded d;
  d.device = PcieDeviceId(r.U32());
  d.epoch = r.U64();
  return d;
}

}  // namespace epoch_wire

void Agent::RegisterMetrics() {
  if (obs_ == nullptr) {
    return;
  }
  // Stats keep their struct home (tests read them directly); the registry
  // sees them through probes, so the agent shows up in every metrics
  // snapshot without double bookkeeping.
  obs::Labels labels = {{"host", std::to_string(host_.id().value())}};
  obs::Registry& reg = obs_->metrics();
  reg.RegisterProbe("agent.forwarded_writes", labels,
                    [this] { return static_cast<int64_t>(stats_.forwarded_writes); });
  reg.RegisterProbe("agent.forwarded_reads", labels,
                    [this] { return static_cast<int64_t>(stats_.forwarded_reads); });
  reg.RegisterProbe("agent.stale_epoch_rejects", labels,
                    [this] { return static_cast<int64_t>(stats_.stale_epoch_rejects); });
  reg.RegisterProbe("agent.dedup_hits", labels,
                    [this] { return static_cast<int64_t>(stats_.dedup_hits); });
  reg.RegisterProbe("agent.watchdog_misses", labels,
                    [this] { return static_cast<int64_t>(stats_.watchdog_misses); });
  reg.RegisterProbe("agent.flr_resets", labels,
                    [this] { return static_cast<int64_t>(stats_.flr_resets); });
  reg.RegisterProbe("agent.reports_sent", labels,
                    [this] { return static_cast<int64_t>(stats_.reports_sent); });
  reg.RegisterProbe("agent.migrations_executed", labels, [this] {
    return static_cast<int64_t>(stats_.migrations_executed);
  });
  // Overload-protection surface: admission (queue-delay histograms +
  // inflight gauge) and the per-server refusal counters, summed at sample
  // time so late-spawned serve loops are covered.
  admission_.BindMetrics(&reg, labels);
  reg.RegisterProbe("agent.rpc_shed", labels,
                    [this] { return static_cast<int64_t>(rpc_shed()); });
  reg.RegisterProbe("agent.rpc_expired", labels,
                    [this] { return static_cast<int64_t>(rpc_expired()); });
  reg.RegisterProbe("agent.expired_at_device", labels, [this] {
    return static_cast<int64_t>(stats_.expired_at_device);
  });
  reg.RegisterProbe("agent.self_fence_rejects", labels, [this] {
    return static_cast<int64_t>(stats_.self_fence_rejects);
  });
  reg.RegisterProbe("agent.peer_probes_ok", labels, [this] {
    return static_cast<int64_t>(stats_.peer_probes_ok);
  });
}

uint64_t Agent::rpc_shed() const {
  uint64_t total = 0;
  for (const auto& server : servers_) {
    total += server->stats().shed;
  }
  return total;
}

uint64_t Agent::rpc_expired() const {
  uint64_t total = 0;
  for (const auto& server : servers_) {
    total += server->stats().expired;
  }
  return total;
}

void Agent::FlightNote(const char* category, const char* fmt, ...) {
  if (obs_ == nullptr) {
    return;
  }
  va_list args;
  va_start(args, fmt);
  obs_->flight().NoteV(host_.loop().now(), host_.id().value(), category, fmt,
                       args);
  va_end(args);
}

void Agent::RegisterDevice(pcie::PcieDevice* device, DeviceType type,
                           UtilProbe util_probe, HealthProbe health_probe) {
  CXLPOOL_CHECK(device != nullptr);
  LocalDevice entry;
  entry.device = device;
  entry.type = type;
  entry.util_probe = std::move(util_probe);
  entry.health_probe = std::move(health_probe);
  devices_.emplace(device->id(), std::move(entry));
}

pcie::PcieDevice* Agent::FindDevice(PcieDeviceId id) {
  auto it = devices_.find(id);
  return it == devices_.end() ? nullptr : it->second.device;
}

uint64_t Agent::device_epoch(PcieDeviceId id) const {
  auto it = devices_.find(id);
  return it == devices_.end() ? 0 : it->second.epoch;
}

uint32_t Agent::device_fault_episodes(PcieDeviceId id) const {
  auto it = devices_.find(id);
  return it == devices_.end() ? 0 : it->second.fault_episodes;
}

bool Agent::self_fenced() const {
  if (config_.lease_ttl <= 0 || !reporting_started_) {
    return false;
  }
  return host_.loop().now() - last_report_ok_ > config_.lease_ttl;
}

uint64_t Agent::peer_mask() {
  uint64_t mask = ~0ull;
  Nanos stale = config_.peer_unreachable_after > 0
                    ? config_.peer_unreachable_after
                    : 2 * config_.peer_probe_interval + config_.peer_probe_timeout;
  Nanos now = host_.loop().now();
  for (const auto& [peer, last_ok] : peer_last_ok_) {
    if (peer < 64 && now - last_ok > stale) {
      mask &= ~(1ull << peer);
    }
  }
  return mask;
}

sim::Task<Result<std::vector<std::byte>>> Agent::HandleForwarding(
    uint16_t method, std::span<const std::byte> payload,
    const msg::ServerContext& sctx) {
  obs::TraceContext ctx = sctx.trace;
  bool is_write = method == kMethodMmioWrite;
  if (!is_write && method != kMethodMmioRead) {
    co_return Unimplemented("unknown forwarding method");
  }
  if (slow_drain_ > 0) {
    // Chaos: a slow-draining agent. The stall sits BEFORE the deadline
    // re-check so ops that die during it are shed, not applied late.
    co_await sim::Delay(host_.loop(), slow_drain_);
  }
  // Pre-BAR deadline re-check. The RPC layer already shed requests that
  // were dead on dequeue; this catches budgets that ran out between
  // dequeue and here (slow drain, queued handler work). Past this point
  // the op touches device state, so this is the last cheap exit.
  if (sctx.deadline > 0 && host_.loop().now() >= sctx.deadline) {
    ++stats_.expired_at_device;
    FlightNote("mmio", "pre-BAR deadline expiry method=%u", method);
    co_return DeadlineExceeded("op deadline expired before device BAR");
  }
  auto decoded = mmio_wire::Decode(payload, is_write);
  if (!decoded.ok()) {
    co_return decoded.status();
  }
  auto it = devices_.find(decoded->device);
  if (it == devices_.end()) {
    co_return NotFound("device not on this host");
  }
  // Self-fence: the lease TTL lapsed without a report round-trip, so the
  // orchestrator may already be re-issuing this device under a new epoch
  // it could not push to us. Refusing here (before the epoch check, which
  // would wrongly admit the op — our epoch is stale too) is what makes
  // "wait out the TTL" a sound fencing proof on the orchestrator side.
  if (self_fenced()) {
    ++stats_.self_fence_rejects;
    FlightNote("mmio", "self-fence reject dev=%u (lease TTL expired)",
               decoded->device.value());
    co_return Aborted("agent lease TTL expired; self-fenced");
  }
  if (decoded->epoch != it->second.epoch) {
    ++stats_.stale_epoch_rejects;
    FlightNote("mmio", "stale-epoch reject dev=%u epoch=%llu (local %llu)",
               decoded->device.value(),
               static_cast<unsigned long long>(decoded->epoch),
               static_cast<unsigned long long>(it->second.epoch));
    co_return Aborted("stale lease epoch");
  }
  pcie::PcieDevice* device = it->second.device;
  if (is_write) {
    // Exactly-once: a timed-out attempt is usually already in our request
    // ring and has been (or will be) applied; the client retries with the
    // same (client_id, seq). Acknowledge duplicates without touching the
    // device — re-ringing a doorbell advances device state twice.
    // The epoch check above still wins: a fenced-off path gets kAborted,
    // never a dedup ack.
    if (decoded->client_id != 0) {
      auto [seq_it, inserted] =
          it->second.applied_write_seq.try_emplace(decoded->client_id, 0);
      if (!inserted && decoded->seq <= seq_it->second) {
        ++stats_.dedup_hits;
        FlightNote("mmio", "dedup ack dev=%u client=%llu seq=%llu",
                   decoded->device.value(),
                   static_cast<unsigned long long>(decoded->client_id),
                   static_cast<unsigned long long>(decoded->seq));
        co_return std::vector<std::byte>{};
      }
    }
    ++stats_.forwarded_writes;
    obs::Span bar = obs::MaybeStartSpan(tracer(), "mmio.device_bar",
                                        host_.id().value(), ctx,
                                        host_.loop().now());
    // The inflight window opens here with NO suspension point since the
    // epoch check above, and an epoch push drains it before acking — so a
    // fence-ack proves no admitted op under the old epoch is still
    // heading for the BAR.
    ++inflight_forwarded_;
    Status st = co_await device->MmioWrite(decoded->reg, decoded->value);
    --inflight_forwarded_;
    bar.End(host_.loop().now());
    if (!st.ok()) {
      co_return st;
    }
    if (apply_hook_) {
      apply_hook_(decoded->device, decoded->epoch, decoded->client_id,
                  host_.loop().now());
    }
    // Record only after a successful apply: a write the device rejected had
    // no side effect, so its retry must be allowed to run for real.
    if (decoded->client_id != 0) {
      uint64_t& mark = it->second.applied_write_seq[decoded->client_id];
      mark = std::max(mark, decoded->seq);
    }
    co_return std::vector<std::byte>{};
  }
  ++stats_.forwarded_reads;
  obs::Span bar = obs::MaybeStartSpan(tracer(), "mmio.device_bar",
                                      host_.id().value(), ctx,
                                      host_.loop().now());
  ++inflight_forwarded_;
  auto value = co_await device->MmioRead(decoded->reg);
  --inflight_forwarded_;
  bar.End(host_.loop().now());
  if (!value.ok()) {
    co_return value.status();
  }
  std::vector<std::byte> resp(8);
  msg::wire::PutU64(resp.data(), *value);
  co_return resp;
}

sim::Task<Result<std::vector<std::byte>>> Agent::HandleControl(
    uint16_t method, std::span<const std::byte> payload) {
  if (method == kMethodEpoch) {
    auto decoded = epoch_wire::Decode(payload);
    if (!decoded.ok()) {
      co_return decoded.status();
    }
    // Fence barrier: ops admitted under the old epoch may be mid-flight
    // between their epoch check and the device BAR. Drain them before
    // installing the new epoch and acking — once the orchestrator sees
    // this ack, no old-epoch op can apply, ever (later arrivals fail the
    // epoch check). Forwarding and control ride separate channels and
    // serve loops, so waiting here never blocks the drain itself; BAR ops
    // are deadline-bounded (wedge watchdog), so the wait terminates.
    while (inflight_forwarded_ > 0) {
      co_await sim::Delay(host_.loop(), kMicrosecond);
    }
    auto it = devices_.find(decoded->device);
    if (it == devices_.end()) {
      co_return NotFound("device not on this host");
    }
    it->second.epoch = decoded->epoch;
    ++stats_.epoch_updates;
    co_return std::vector<std::byte>{};
  }
  if (method != kMethodMigrate) {
    co_return Unimplemented("unknown control method");
  }
  auto decoded = migrate_wire::Decode(payload);
  if (!decoded.ok()) {
    co_return decoded.status();
  }
  if (migration_handler_) {
    co_await migration_handler_(decoded->old_dev, decoded->new_dev,
                                decoded->new_home);
  }
  ++stats_.migrations_executed;
  co_return std::vector<std::byte>{};
}

void Agent::ServeForwarding(msg::Endpoint& endpoint, sim::StopToken& stop) {
  auto server = std::make_unique<msg::RpcServer>(
      endpoint, [this](uint16_t m, std::span<const std::byte> p,
                       const msg::ServerContext& sctx) {
        return HandleForwarding(m, p, sctx);
      });
  server->BindTracer(tracer());
  // Every forwarding loop shares the agent's one admission controller, so
  // the inflight bound and the CoDel state span all remote users.
  server->BindAdmission(&admission_);
  sim::Spawn(server->ServeSupervised(stop));
  servers_.push_back(std::move(server));
}

void Agent::ServeControl(msg::Endpoint& endpoint, sim::StopToken& stop) {
  auto server = std::make_unique<msg::RpcServer>(
      endpoint, [this](uint16_t m, std::span<const std::byte> p) {
        return HandleControl(m, p);
      });
  server->BindTracer(tracer());
  sim::Spawn(server->ServeSupervised(stop));
  servers_.push_back(std::move(server));
}

void Agent::StartReporting(msg::Endpoint& to_orchestrator, sim::StopToken& stop) {
  // The lease clock starts with a full TTL of credit: the agent is not
  // fenced before its first report has had a chance to round-trip.
  reporting_started_ = true;
  last_report_ok_ = host_.loop().now();
  sim::Spawn(ReportLoop(to_orchestrator, stop));
}

void Agent::ServePeerProbe(msg::Endpoint& endpoint, sim::StopToken& stop) {
  auto server = std::make_unique<msg::RpcServer>(
      endpoint, [](uint16_t m, std::span<const std::byte>)
                    -> sim::Task<Result<std::vector<std::byte>>> {
        if (m != kMethodPeerProbe) {
          co_return Unimplemented("unknown peer method");
        }
        co_return std::vector<std::byte>{};
      });
  // A crashed host's serve loop aborts on its first memory op and the
  // supervisor keeps failing to restart it — so crashed peers simply stop
  // answering, which is exactly the signal the probe measures.
  sim::Spawn(server->ServeSupervised(stop));
  servers_.push_back(std::move(server));
}

void Agent::StartPeerProbe(HostId peer, msg::Endpoint& endpoint,
                           sim::StopToken& stop) {
  // Grace: a freshly wired peer counts reachable for one staleness bound.
  peer_last_ok_[peer.value()] = host_.loop().now();
  sim::Spawn(PeerProbeLoop(peer, endpoint, stop));
}

sim::Task<> Agent::PeerProbeLoop(HostId peer, msg::Endpoint& endpoint,
                                 sim::StopToken& stop) {
  msg::RpcClient client(endpoint);
  while (!stop.stopped()) {
    if (host_.crashed()) {
      co_await sim::Delay(host_.loop(), config_.peer_probe_interval);
      continue;
    }
    ++stats_.peer_probes_sent;
    auto resp = co_await client.Call(
        kMethodPeerProbe, {}, host_.loop().now() + config_.peer_probe_timeout,
        {}, msg::kPriorityControl);
    if (resp.ok()) {
      ++stats_.peer_probes_ok;
      peer_last_ok_[peer.value()] = host_.loop().now();
    }
    co_await sim::Delay(host_.loop(), config_.peer_probe_interval);
  }
}

sim::Task<std::vector<DeviceStatus>> Agent::ProbeDevices() {
  std::vector<DeviceStatus> statuses;
  for (auto& [id, entry] : devices_) {
    DeviceStatus s;
    s.device = id;
    s.type = entry.type;
    s.healthy = !entry.device->failed();
    if (s.healthy) {
      // Watchdog probe over real MMIO, like a production agent would. For
      // NICs the link-status read does double duty as the wedge probe; a
      // fail-stopped device is skipped (immediate kUnavailable already
      // drives the fail-stop path). A wedged device answers nothing: the
      // probe stalls for the completion timeout and comes back
      // kDeadlineExceeded — the gray signature the watchdog keys on.
      uint64_t probe_reg =
          entry.type == DeviceType::kNic ? devices::kNicRegLinkStatus : 0;
      auto probe = co_await entry.device->MmioRead(probe_reg);
      if (!probe.ok() &&
          probe.status().code() == StatusCode::kDeadlineExceeded) {
        ++stats_.watchdog_misses;
        ++entry.mmio_misses;
        s.healthy = false;
        FlightNote("watchdog", "probe miss dev=%u consecutive=%d", id.value(),
                   entry.mmio_misses);
        if (entry.mmio_misses >= config_.wedge_miss_threshold) {
          // FLR: drains engines via the generation bump, re-initializes
          // BAR state, clears the wedge. The episode is reported to the
          // orchestrator through fault_episodes below.
          entry.device->Reset();
          ++stats_.flr_resets;
          ++entry.fault_episodes;
          entry.mmio_misses = 0;
          FlightNote("watchdog", "FLR reset dev=%u episode=%u", id.value(),
                     entry.fault_episodes);
        }
      } else {
        entry.mmio_misses = 0;
        if (entry.type == DeviceType::kNic) {
          s.healthy = probe.ok() && *probe == 1;
        } else if (!probe.ok()) {
          s.healthy = false;
        }
      }
    }
    if (s.healthy && entry.health_probe) {
      s.healthy = entry.health_probe();
    }
    s.utilization = entry.util_probe ? entry.util_probe() : 0.0;
    s.fault_episodes = entry.fault_episodes;
    statuses.push_back(s);
  }
  co_return statuses;
}

sim::Task<> Agent::ReportLoop(msg::Endpoint& to_orchestrator, sim::StopToken& stop) {
  msg::RpcClient client(to_orchestrator);
  while (!stop.stopped()) {
    // A crashed host's agent goes dormant: no probes, no reports. Its
    // silence is what the orchestrator's liveness sweep detects.
    if (host_.crashed()) {
      co_await sim::Delay(host_.loop(), config_.monitor_interval);
      continue;
    }
    std::vector<DeviceStatus> statuses = co_await ProbeDevices();
    // An empty report still goes out — it is the host's heartbeat.
    // Reports are control plane: they jump client queues and are never
    // shed, so heartbeats keep flowing through a data-plane storm.
    auto resp = co_await client.Call(
        kMethodReport, report_wire::Encode(host_.id(), peer_mask(), statuses),
        host_.loop().now() + config_.rpc_timeout, {}, msg::kPriorityControl);
    if (resp.ok()) {
      ++stats_.reports_sent;
      // Lease renewal: ONLY a full report round-trip renews the TTL.
      // Receiving control traffic must not — an asymmetric link can
      // deliver orchestrator→agent while agent→orchestrator drops, and
      // the orchestrator's TTL-expiry proof counts from the last report
      // it saw, so renewal has to track the same events.
      last_report_ok_ = host_.loop().now();
    }
    co_await sim::Delay(host_.loop(), config_.monitor_interval);
  }
}

}  // namespace cxlpool::core
