// Pooling agent: one per host (paper §4.2). The agent owns the host's
// physically attached PCIe devices and provides three services over CXL
// shared-memory channels:
//   1. MMIO forwarding — executes register accesses on behalf of remote
//      hosts using pooled devices (the datapath's doorbell path).
//   2. Monitoring — probes local device health (e.g. NIC link status via
//      MMIO) and utilization, and reports to the orchestrator.
//   3. Control — executes orchestrator commands (migrations) by invoking
//      the host-side migration handler registered by the I/O stack.
#ifndef SRC_CORE_AGENT_H_
#define SRC_CORE_AGENT_H_

#include <functional>
#include <map>
#include <vector>

#include "src/core/mmio_path.h"
#include "src/msg/rpc.h"
#include "src/obs/obs.h"
#include "src/pcie/device.h"
#include "src/sim/poll.h"

namespace cxlpool::core {

enum class DeviceType : uint8_t {
  kNic = 1,
  kSsd = 2,
  kAccel = 3,
};

// RPC methods beyond the MMIO pair declared in mmio_path.h.
inline constexpr uint16_t kMethodReport = 3;     // agent -> orchestrator
inline constexpr uint16_t kMethodMigrate = 4;    // orchestrator -> agent
inline constexpr uint16_t kMethodEpoch = 5;      // orchestrator -> home agent
inline constexpr uint16_t kMethodPeerProbe = 6;  // agent -> agent liveness

// One device's status inside a report frame.
struct DeviceStatus {
  PcieDeviceId device;
  DeviceType type = DeviceType::kNic;
  bool healthy = true;
  double utilization = 0.0;
  // Cumulative gray-fault episodes the home agent detected on this device
  // (watchdog-triggered FLRs). The orchestrator folds these into its flap
  // accounting for quarantine decisions.
  uint32_t fault_episodes = 0;
};

namespace report_wire {
// peer_mask: bit h set = this reporter could reach host h recently (its
// peer probe round-tripped within the staleness bound). Hosts the agent
// does not probe keep their bit set — absence of evidence is never a
// vote against a peer. The orchestrator's quorum liveness counts cleared
// bits from fresh reporters as "unreachable" votes.
std::vector<std::byte> Encode(HostId reporter, uint64_t peer_mask,
                              std::span<const DeviceStatus> statuses);
struct Decoded {
  HostId reporter;
  uint64_t peer_mask = ~0ull;
  std::vector<DeviceStatus> statuses;
};
Result<Decoded> Decode(std::span<const std::byte> payload);
}  // namespace report_wire

namespace migrate_wire {
std::vector<std::byte> Encode(PcieDeviceId old_dev, PcieDeviceId new_dev,
                              HostId new_home);
struct Decoded {
  PcieDeviceId old_dev;
  PcieDeviceId new_dev;
  HostId new_home;
};
Result<Decoded> Decode(std::span<const std::byte> payload);
}  // namespace migrate_wire

// kMethodEpoch payload: the orchestrator pushes a device's current lease
// epoch to its home agent after migrating leases off it (and when a host
// re-registers after a crash).
namespace epoch_wire {
std::vector<std::byte> Encode(PcieDeviceId device, uint64_t epoch);
struct Decoded {
  PcieDeviceId device;
  uint64_t epoch = 0;
};
Result<Decoded> Decode(std::span<const std::byte> payload);
}  // namespace epoch_wire

class Agent {
 public:
  struct Config {
    Nanos monitor_interval = 20 * kMicrosecond;
    Nanos rpc_timeout = 500 * kMicrosecond;
    // Watchdog: consecutive MMIO probe deadline misses before the agent
    // declares the device wedged and issues an FLR-style Reset(). Probes
    // ride the monitor cadence, so detection latency is roughly
    // wedge_miss_threshold * (monitor_interval + wedge stall).
    int wedge_miss_threshold = 2;
    // Admission control for the forwarding serve loops: CoDel-style
    // shedding on sustained queueing delay plus a per-agent inflight
    // bound. Defaults shed data-plane ops only; control plane (probes,
    // leases) is never shed, which is what keeps the watchdog honest
    // under pure overload.
    msg::AdmissionController::Options admission;
    // Shared observability bundle (null = disabled): device_bar spans on
    // forwarded ops, flight-recorder notes on anomalies (stale epoch,
    // dedup, FLR), and stats exported as registry probes.
    obs::Observability* obs = nullptr;
    // Split-brain-safe lease clock (ISSUE 9). When > 0 and reporting has
    // started, the agent treats its lease authority as a TTL renewed ONLY
    // by a successful report round-trip (request delivered AND response
    // received — proof the orchestrator heard from us). Once the local
    // monotonic clock passes last_renewal + lease_ttl, every forwarded op
    // on a local device is refused with kAborted (self-fence) until a
    // report round-trips again. This is what lets a partitioned
    // orchestrator hand the device away after waiting lease_ttl + margin:
    // by then the old home agent has provably stopped applying. 0 = off
    // (standalone agents without a report loop are never fenced).
    Nanos lease_ttl = 0;
    // Peer-probe mesh cadence (quorum liveness): how often this agent
    // pings each peer it was wired to, the per-probe timeout, and how
    // stale a last-success may get before the peer_mask bit clears.
    Nanos peer_probe_interval = 50 * kMicrosecond;
    Nanos peer_probe_timeout = 100 * kMicrosecond;
    // 0 = derived: 2 * interval + timeout.
    Nanos peer_unreachable_after = 0;
  };

  Agent(cxl::HostAdapter& host, Config config)
      : host_(host),
        config_(config),
        obs_(config.obs),
        admission_(config.admission) {
    RegisterMetrics();
  }
  Agent(const Agent&) = delete;
  Agent& operator=(const Agent&) = delete;

  HostId host_id() const { return host_.id(); }
  cxl::HostAdapter& host() { return host_; }

  // --- Local device registry ---
  using UtilProbe = std::function<double()>;
  // Health probe returns true while the device is serviceable; the default
  // checks PcieDevice::failed() only.
  using HealthProbe = std::function<bool()>;

  void RegisterDevice(pcie::PcieDevice* device, DeviceType type,
                      UtilProbe util_probe = nullptr,
                      HealthProbe health_probe = nullptr);
  pcie::PcieDevice* FindDevice(PcieDeviceId id);

  // --- Services (each spawns a detached task) ---
  // Serves forwarded MMIO for remote users of local devices.
  void ServeForwarding(msg::Endpoint& endpoint, sim::StopToken& stop);
  // Serves orchestrator control commands (migrations).
  void ServeControl(msg::Endpoint& endpoint, sim::StopToken& stop);
  // Monitors local devices and pushes reports to the orchestrator.
  void StartReporting(msg::Endpoint& to_orchestrator, sim::StopToken& stop);
  // Answers kMethodPeerProbe pings from a peer agent (quorum liveness).
  void ServePeerProbe(msg::Endpoint& endpoint, sim::StopToken& stop);
  // Pings `peer` over `endpoint` at peer_probe_interval; successes feed
  // the peer_mask bit this agent reports to the orchestrator.
  void StartPeerProbe(HostId peer, msg::Endpoint& endpoint,
                      sim::StopToken& stop);
  // Reachability bitmap over probed peers (bit h = host h reachable).
  uint64_t peer_mask();

  // Invoked (awaited) when the orchestrator migrates a device this host
  // uses. The I/O stack rebinds its virtual devices here.
  using MigrationHandler =
      std::function<sim::Task<>(PcieDeviceId old_dev, PcieDeviceId new_dev,
                                HostId new_home)>;
  void SetMigrationHandler(MigrationHandler handler) {
    migration_handler_ = std::move(handler);
  }

  struct Stats {
    uint64_t forwarded_writes = 0;
    uint64_t forwarded_reads = 0;
    uint64_t reports_sent = 0;
    uint64_t migrations_executed = 0;
    uint64_t stale_epoch_rejects = 0;  // forwarded ops refused with kAborted
    uint64_t epoch_updates = 0;
    // Exactly-once forwarding: duplicate writes (timeout-triggered retries
    // of an already-applied op) acknowledged without re-applying.
    uint64_t dedup_hits = 0;
    // Watchdog: individual probe deadline misses, and FLR resets issued
    // once misses crossed wedge_miss_threshold.
    uint64_t watchdog_misses = 0;
    uint64_t flr_resets = 0;
    // Deadline propagation: forwarded ops whose budget expired after
    // dequeue but before the device BAR access (the pre-BAR re-check —
    // the RPC layer's dequeue check catches the rest).
    uint64_t expired_at_device = 0;
    // Split-brain safety: forwarded ops refused because this agent's
    // lease TTL expired without a report round-trip (self-fence), and
    // peer-probe traffic for the quorum mesh.
    uint64_t self_fence_rejects = 0;
    uint64_t peer_probes_sent = 0;
    uint64_t peer_probes_ok = 0;
  };
  const Stats& stats() const { return stats_; }
  // The shared admission controller the forwarding serve loops run under.
  const msg::AdmissionController& admission() const { return admission_; }
  // Sums of per-server RPC refusal stats across every serve loop this
  // agent spawned (forwarding + control).
  uint64_t rpc_shed() const;
  uint64_t rpc_expired() const;

  // Chaos hook: every forwarded op stalls `delay` inside the handler
  // before its pre-BAR deadline re-check — a slow-draining home agent
  // (GC pause, noisy neighbor). 0 restores normal drain.
  void InjectSlowDrain(Nanos delay) { slow_drain_ = delay; }

  // The lease epoch this agent enforces for a local device (tests).
  uint64_t device_epoch(PcieDeviceId id) const;
  // Gray-fault episodes the watchdog logged against a local device (tests).
  uint32_t device_fault_episodes(PcieDeviceId id) const;
  // True while the lease TTL has lapsed without a report round-trip: all
  // forwarded ops are being refused (see Config::lease_ttl).
  bool self_fenced() const;

  // Dual-ownership oracle hook (src/analysis/lease_oracle.h): invoked at
  // the instant a forwarded write lands on a local device BAR, with the
  // epoch it was admitted under. Pure bookkeeping — must not touch the
  // sim clock or RNG.
  using ApplyHook = std::function<void(PcieDeviceId device, uint64_t epoch,
                                       uint64_t client_id, Nanos at)>;
  void SetApplyHook(ApplyHook hook) { apply_hook_ = std::move(hook); }

 private:
  struct LocalDevice {
    pcie::PcieDevice* device;
    DeviceType type;
    UtilProbe util_probe;
    HealthProbe health_probe;
    // Forwarded ops must carry this epoch; stale paths get kAborted.
    uint64_t epoch = 0;
    // Exactly-once dedup window: highest applied write seq per client.
    // A client's calls are serialized, so one high-water mark per client
    // is a complete window (a duplicate is always <= the mark).
    std::map<uint64_t, uint64_t> applied_write_seq;
    // Watchdog state.
    int mmio_misses = 0;            // consecutive probe deadline misses
    uint32_t fault_episodes = 0;    // wedges detected + repaired via FLR
  };

  sim::Task<Result<std::vector<std::byte>>> HandleForwarding(
      uint16_t method, std::span<const std::byte> payload,
      const msg::ServerContext& sctx);
  sim::Task<Result<std::vector<std::byte>>> HandleControl(
      uint16_t method, std::span<const std::byte> payload);
  sim::Task<> ReportLoop(msg::Endpoint& to_orchestrator, sim::StopToken& stop);
  sim::Task<> PeerProbeLoop(HostId peer, msg::Endpoint& endpoint,
                            sim::StopToken& stop);
  sim::Task<std::vector<DeviceStatus>> ProbeDevices();
  void RegisterMetrics();
  obs::Tracer* tracer() { return obs_ != nullptr ? obs_->tracer() : nullptr; }
  void FlightNote(const char* category, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));

  cxl::HostAdapter& host_;
  Config config_;
  obs::Observability* obs_;
  msg::AdmissionController admission_;
  Nanos slow_drain_ = 0;
  std::map<PcieDeviceId, LocalDevice> devices_;
  MigrationHandler migration_handler_;
  std::vector<std::unique_ptr<msg::RpcServer>> servers_;
  Stats stats_;
  ApplyHook apply_hook_;
  // Lease clock: renewed only by a successful report round-trip.
  bool reporting_started_ = false;
  Nanos last_report_ok_ = 0;
  // Forwarded ops currently between admission and BAR completion. An
  // epoch push (fence) drains this to zero before acking, so a received
  // fence-ack proves no old-epoch op can still land.
  int inflight_forwarded_ = 0;
  // Peer probe view: last successful round-trip per probed peer.
  std::map<uint32_t, Nanos> peer_last_ok_;
};

}  // namespace cxlpool::core

#endif  // SRC_CORE_AGENT_H_
