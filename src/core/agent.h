// Pooling agent: one per host (paper §4.2). The agent owns the host's
// physically attached PCIe devices and provides three services over CXL
// shared-memory channels:
//   1. MMIO forwarding — executes register accesses on behalf of remote
//      hosts using pooled devices (the datapath's doorbell path).
//   2. Monitoring — probes local device health (e.g. NIC link status via
//      MMIO) and utilization, and reports to the orchestrator.
//   3. Control — executes orchestrator commands (migrations) by invoking
//      the host-side migration handler registered by the I/O stack.
#ifndef SRC_CORE_AGENT_H_
#define SRC_CORE_AGENT_H_

#include <functional>
#include <map>
#include <vector>

#include "src/core/mmio_path.h"
#include "src/msg/rpc.h"
#include "src/obs/obs.h"
#include "src/pcie/device.h"
#include "src/sim/poll.h"

namespace cxlpool::core {

enum class DeviceType : uint8_t {
  kNic = 1,
  kSsd = 2,
  kAccel = 3,
};

// RPC methods beyond the MMIO pair declared in mmio_path.h.
inline constexpr uint16_t kMethodReport = 3;   // agent -> orchestrator
inline constexpr uint16_t kMethodMigrate = 4;  // orchestrator -> agent
inline constexpr uint16_t kMethodEpoch = 5;    // orchestrator -> home agent

// One device's status inside a report frame.
struct DeviceStatus {
  PcieDeviceId device;
  DeviceType type = DeviceType::kNic;
  bool healthy = true;
  double utilization = 0.0;
  // Cumulative gray-fault episodes the home agent detected on this device
  // (watchdog-triggered FLRs). The orchestrator folds these into its flap
  // accounting for quarantine decisions.
  uint32_t fault_episodes = 0;
};

namespace report_wire {
std::vector<std::byte> Encode(HostId reporter, std::span<const DeviceStatus> statuses);
Result<std::pair<HostId, std::vector<DeviceStatus>>> Decode(
    std::span<const std::byte> payload);
}  // namespace report_wire

namespace migrate_wire {
std::vector<std::byte> Encode(PcieDeviceId old_dev, PcieDeviceId new_dev,
                              HostId new_home);
struct Decoded {
  PcieDeviceId old_dev;
  PcieDeviceId new_dev;
  HostId new_home;
};
Result<Decoded> Decode(std::span<const std::byte> payload);
}  // namespace migrate_wire

// kMethodEpoch payload: the orchestrator pushes a device's current lease
// epoch to its home agent after migrating leases off it (and when a host
// re-registers after a crash).
namespace epoch_wire {
std::vector<std::byte> Encode(PcieDeviceId device, uint64_t epoch);
struct Decoded {
  PcieDeviceId device;
  uint64_t epoch = 0;
};
Result<Decoded> Decode(std::span<const std::byte> payload);
}  // namespace epoch_wire

class Agent {
 public:
  struct Config {
    Nanos monitor_interval = 20 * kMicrosecond;
    Nanos rpc_timeout = 500 * kMicrosecond;
    // Watchdog: consecutive MMIO probe deadline misses before the agent
    // declares the device wedged and issues an FLR-style Reset(). Probes
    // ride the monitor cadence, so detection latency is roughly
    // wedge_miss_threshold * (monitor_interval + wedge stall).
    int wedge_miss_threshold = 2;
    // Admission control for the forwarding serve loops: CoDel-style
    // shedding on sustained queueing delay plus a per-agent inflight
    // bound. Defaults shed data-plane ops only; control plane (probes,
    // leases) is never shed, which is what keeps the watchdog honest
    // under pure overload.
    msg::AdmissionController::Options admission;
    // Shared observability bundle (null = disabled): device_bar spans on
    // forwarded ops, flight-recorder notes on anomalies (stale epoch,
    // dedup, FLR), and stats exported as registry probes.
    obs::Observability* obs = nullptr;
  };

  Agent(cxl::HostAdapter& host, Config config)
      : host_(host),
        config_(config),
        obs_(config.obs),
        admission_(config.admission) {
    RegisterMetrics();
  }
  Agent(const Agent&) = delete;
  Agent& operator=(const Agent&) = delete;

  HostId host_id() const { return host_.id(); }
  cxl::HostAdapter& host() { return host_; }

  // --- Local device registry ---
  using UtilProbe = std::function<double()>;
  // Health probe returns true while the device is serviceable; the default
  // checks PcieDevice::failed() only.
  using HealthProbe = std::function<bool()>;

  void RegisterDevice(pcie::PcieDevice* device, DeviceType type,
                      UtilProbe util_probe = nullptr,
                      HealthProbe health_probe = nullptr);
  pcie::PcieDevice* FindDevice(PcieDeviceId id);

  // --- Services (each spawns a detached task) ---
  // Serves forwarded MMIO for remote users of local devices.
  void ServeForwarding(msg::Endpoint& endpoint, sim::StopToken& stop);
  // Serves orchestrator control commands (migrations).
  void ServeControl(msg::Endpoint& endpoint, sim::StopToken& stop);
  // Monitors local devices and pushes reports to the orchestrator.
  void StartReporting(msg::Endpoint& to_orchestrator, sim::StopToken& stop);

  // Invoked (awaited) when the orchestrator migrates a device this host
  // uses. The I/O stack rebinds its virtual devices here.
  using MigrationHandler =
      std::function<sim::Task<>(PcieDeviceId old_dev, PcieDeviceId new_dev,
                                HostId new_home)>;
  void SetMigrationHandler(MigrationHandler handler) {
    migration_handler_ = std::move(handler);
  }

  struct Stats {
    uint64_t forwarded_writes = 0;
    uint64_t forwarded_reads = 0;
    uint64_t reports_sent = 0;
    uint64_t migrations_executed = 0;
    uint64_t stale_epoch_rejects = 0;  // forwarded ops refused with kAborted
    uint64_t epoch_updates = 0;
    // Exactly-once forwarding: duplicate writes (timeout-triggered retries
    // of an already-applied op) acknowledged without re-applying.
    uint64_t dedup_hits = 0;
    // Watchdog: individual probe deadline misses, and FLR resets issued
    // once misses crossed wedge_miss_threshold.
    uint64_t watchdog_misses = 0;
    uint64_t flr_resets = 0;
    // Deadline propagation: forwarded ops whose budget expired after
    // dequeue but before the device BAR access (the pre-BAR re-check —
    // the RPC layer's dequeue check catches the rest).
    uint64_t expired_at_device = 0;
  };
  const Stats& stats() const { return stats_; }
  // The shared admission controller the forwarding serve loops run under.
  const msg::AdmissionController& admission() const { return admission_; }
  // Sums of per-server RPC refusal stats across every serve loop this
  // agent spawned (forwarding + control).
  uint64_t rpc_shed() const;
  uint64_t rpc_expired() const;

  // Chaos hook: every forwarded op stalls `delay` inside the handler
  // before its pre-BAR deadline re-check — a slow-draining home agent
  // (GC pause, noisy neighbor). 0 restores normal drain.
  void InjectSlowDrain(Nanos delay) { slow_drain_ = delay; }

  // The lease epoch this agent enforces for a local device (tests).
  uint64_t device_epoch(PcieDeviceId id) const;
  // Gray-fault episodes the watchdog logged against a local device (tests).
  uint32_t device_fault_episodes(PcieDeviceId id) const;

 private:
  struct LocalDevice {
    pcie::PcieDevice* device;
    DeviceType type;
    UtilProbe util_probe;
    HealthProbe health_probe;
    // Forwarded ops must carry this epoch; stale paths get kAborted.
    uint64_t epoch = 0;
    // Exactly-once dedup window: highest applied write seq per client.
    // A client's calls are serialized, so one high-water mark per client
    // is a complete window (a duplicate is always <= the mark).
    std::map<uint64_t, uint64_t> applied_write_seq;
    // Watchdog state.
    int mmio_misses = 0;            // consecutive probe deadline misses
    uint32_t fault_episodes = 0;    // wedges detected + repaired via FLR
  };

  sim::Task<Result<std::vector<std::byte>>> HandleForwarding(
      uint16_t method, std::span<const std::byte> payload,
      const msg::ServerContext& sctx);
  sim::Task<Result<std::vector<std::byte>>> HandleControl(
      uint16_t method, std::span<const std::byte> payload);
  sim::Task<> ReportLoop(msg::Endpoint& to_orchestrator, sim::StopToken& stop);
  sim::Task<std::vector<DeviceStatus>> ProbeDevices();
  void RegisterMetrics();
  obs::Tracer* tracer() { return obs_ != nullptr ? obs_->tracer() : nullptr; }
  void FlightNote(const char* category, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));

  cxl::HostAdapter& host_;
  Config config_;
  obs::Observability* obs_;
  msg::AdmissionController admission_;
  Nanos slow_drain_ = 0;
  std::map<PcieDeviceId, LocalDevice> devices_;
  MigrationHandler migration_handler_;
  std::vector<std::unique_ptr<msg::RpcServer>> servers_;
  Stats stats_;
};

}  // namespace cxlpool::core

#endif  // SRC_CORE_AGENT_H_
