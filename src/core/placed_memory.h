// PlacedMemory: coherence-correct accessors for driver data structures
// whose placement is a policy decision (local DRAM vs CXL pool).
//
// Descriptor rings and completion structures shared with a DMA device
// through the non-coherent CXL pool must be published with non-temporal
// stores and consumed with invalidate+load (paper §4.1). When the same
// structures live in local DRAM those fences are pure overhead. Drivers
// write against this interface and stay placement-agnostic.
#ifndef SRC_CORE_PLACED_MEMORY_H_
#define SRC_CORE_PLACED_MEMORY_H_

#include <span>

#include "src/common/status.h"
#include "src/cxl/host_adapter.h"
#include "src/sim/task.h"

namespace cxlpool::core {

class PlacedMemory {
 public:
  // `sw_coherence` is true when the region lives in (non-coherent) CXL
  // pool memory and is shared with agents outside this host's coherence
  // domain.
  PlacedMemory(cxl::HostAdapter& host, bool sw_coherence)
      : host_(host), sw_coherence_(sw_coherence) {}

  cxl::HostAdapter& host() { return host_; }
  bool sw_coherence() const { return sw_coherence_; }

  // Makes `in` visible to DMA/other hosts at `addr`.
  sim::Task<Status> Publish(uint64_t addr, std::span<const std::byte> in) {
    if (sw_coherence_) {
      return host_.StoreNt(addr, in);
    }
    return host_.Store(addr, in);
  }

  // Reads the current pool/DRAM contents of [addr, addr+out.size()),
  // bypassing any stale cached copy.
  sim::Task<Status> ReadFresh(uint64_t addr, std::span<std::byte> out) {
    if (!sw_coherence_) {
      return host_.Load(addr, out);
    }
    return InvalidateAndLoad(addr, out);
  }

 private:
  sim::Task<Status> InvalidateAndLoad(uint64_t addr, std::span<std::byte> out) {
    CO_RETURN_IF_ERROR(co_await host_.Invalidate(addr, out.size()));
    co_return co_await host_.Load(addr, out);
  }

  cxl::HostAdapter& host_;
  bool sw_coherence_;
};

}  // namespace cxlpool::core

#endif  // SRC_CORE_PLACED_MEMORY_H_
