#include "src/core/virtual_accel.h"

#include "src/msg/wire.h"

namespace cxlpool::core {

sim::Task<Result<uint16_t>> VirtualAccel::RunJob(uint64_t in_addr, uint32_t in_len,
                                                 uint64_t out_addr, Nanos deadline) {
  std::array<std::byte, devices::kAccelJobSize> job{};
  job[0] = std::byte{devices::kAccelOpXorStream};
  msg::wire::PutU64(job.data() + 8, in_addr);
  msg::wire::PutU32(job.data() + 16, in_len);
  msg::wire::PutU64(job.data() + 24, out_addr);
  co_return co_await driver_->SubmitAndWait(job, deadline);
}

}  // namespace cxlpool::core
