// VirtualSsd: host-side handle to a (possibly remote) pooled SSD, built on
// the generic QueuePairDriver. Storage is the second workload class the
// paper pools (local-SSD stranding is the largest at 54%, §2.1).
#ifndef SRC_CORE_VIRTUAL_SSD_H_
#define SRC_CORE_VIRTUAL_SSD_H_

#include <memory>

#include "src/core/queue_pair.h"
#include "src/devices/ssd.h"

namespace cxlpool::core {

class VirtualSsd {
 public:
  struct Config {
    uint32_t queue_entries = 64;
    bool rings_in_cxl = true;
    obs::Tracer* tracer = nullptr;
  };

  static sim::Task<Result<std::unique_ptr<VirtualSsd>>> Create(
      cxl::HostAdapter& host, std::unique_ptr<MmioPath> mmio, Config config) {
    QueuePairDriver::Config qp;
    qp.entries = config.queue_entries;
    qp.rings_in_cxl = config.rings_in_cxl;
    qp.tracer = config.tracer;
    qp.reset_reg = devices::kSsdRegReset;
    qp.sq_base_reg = devices::kSsdRegSqBase;
    qp.sq_size_reg = devices::kSsdRegSqSize;
    qp.sq_doorbell_reg = devices::kSsdRegSqDoorbell;
    qp.cq_base_reg = devices::kSsdRegCqBase;
    qp.cmd_size = devices::kSsdCmdSize;
    qp.cpl_size = devices::kSsdCplSize;
    auto driver = co_await QueuePairDriver::Create(host, std::move(mmio), qp);
    if (!driver.ok()) {
      co_return driver.status();
    }
    co_return std::unique_ptr<VirtualSsd>(new VirtualSsd(std::move(*driver)));
  }

  // Reads/writes `nsectors` 512 B sectors at `lba` to/from `buf_addr`
  // (which the device DMAs — local DRAM or CXL pool). Returns the device
  // status code (devices::kSsdStatusOk on success).
  sim::Task<Result<uint16_t>> ReadBlocks(uint64_t lba, uint32_t nsectors,
                                         uint64_t buf_addr, Nanos deadline) {
    return Submit(devices::kSsdOpRead, lba, nsectors, buf_addr, deadline);
  }
  sim::Task<Result<uint16_t>> WriteBlocks(uint64_t lba, uint32_t nsectors,
                                          uint64_t buf_addr, Nanos deadline) {
    return Submit(devices::kSsdOpWrite, lba, nsectors, buf_addr, deadline);
  }

  sim::Task<Status> Rebind(std::unique_ptr<MmioPath> mmio) {
    return driver_->Rebind(std::move(mmio));
  }

  QueuePairDriver& driver() { return *driver_; }
  bool remote() const { return driver_->remote(); }

 private:
  explicit VirtualSsd(std::unique_ptr<QueuePairDriver> driver)
      : driver_(std::move(driver)) {}

  sim::Task<Result<uint16_t>> Submit(uint8_t opcode, uint64_t lba, uint32_t nsectors,
                                     uint64_t buf_addr, Nanos deadline);

  std::unique_ptr<QueuePairDriver> driver_;
};

}  // namespace cxlpool::core

#endif  // SRC_CORE_VIRTUAL_SSD_H_
