#include "src/core/mmio_path.h"

#include "src/msg/wire.h"

namespace cxlpool::core {

namespace mmio_wire {

std::vector<std::byte> EncodeWrite(PcieDeviceId device, uint64_t epoch,
                                   uint64_t reg, uint64_t value) {
  std::vector<std::byte> out;
  msg::wire::Writer w(&out);
  w.U32(device.value());
  w.U64(epoch);
  w.U64(reg);
  w.U64(value);
  return out;
}

std::vector<std::byte> EncodeRead(PcieDeviceId device, uint64_t epoch,
                                  uint64_t reg) {
  std::vector<std::byte> out;
  msg::wire::Writer w(&out);
  w.U32(device.value());
  w.U64(epoch);
  w.U64(reg);
  return out;
}

Result<Decoded> Decode(std::span<const std::byte> payload, bool is_write) {
  size_t expect = is_write ? 28 : 20;
  if (payload.size() < expect) {
    return InvalidArgument("short MMIO frame");
  }
  msg::wire::Reader r(payload);
  Decoded d;
  d.device = PcieDeviceId(r.U32());
  d.epoch = r.U64();
  d.reg = r.U64();
  if (is_write) {
    d.value = r.U64();
  }
  return d;
}

}  // namespace mmio_wire

sim::Task<Status> ForwardedMmioPath::Write(uint64_t reg, uint64_t value) {
  auto resp = co_await client_->Call(
      kMethodMmioWrite, mmio_wire::EncodeWrite(device_, epoch_, reg, value),
      loop_.now() + timeout_);
  if (!resp.ok()) {
    co_return resp.status();
  }
  co_return OkStatus();
}

sim::Task<Result<uint64_t>> ForwardedMmioPath::Read(uint64_t reg) {
  auto resp = co_await client_->Call(kMethodMmioRead,
                                     mmio_wire::EncodeRead(device_, epoch_, reg),
                                     loop_.now() + timeout_);
  if (!resp.ok()) {
    co_return resp.status();
  }
  if (resp->size() < 8) {
    co_return Internal("short MMIO read response");
  }
  co_return msg::wire::GetU64(resp->data());
}

}  // namespace cxlpool::core
