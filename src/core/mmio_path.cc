#include "src/core/mmio_path.h"

#include "src/msg/wire.h"

namespace cxlpool::core {

namespace mmio_wire {

std::vector<std::byte> EncodeWrite(PcieDeviceId device, uint64_t epoch,
                                   uint64_t client_id, uint64_t seq,
                                   uint64_t reg, uint64_t value) {
  std::vector<std::byte> out;
  msg::wire::Writer w(&out);
  w.U32(device.value());
  w.U64(epoch);
  w.U64(client_id);
  w.U64(seq);
  w.U64(reg);
  w.U64(value);
  return out;
}

std::vector<std::byte> EncodeRead(PcieDeviceId device, uint64_t epoch,
                                  uint64_t client_id, uint64_t seq,
                                  uint64_t reg) {
  std::vector<std::byte> out;
  msg::wire::Writer w(&out);
  w.U32(device.value());
  w.U64(epoch);
  w.U64(client_id);
  w.U64(seq);
  w.U64(reg);
  return out;
}

Result<Decoded> Decode(std::span<const std::byte> payload, bool is_write) {
  size_t expect = is_write ? 44 : 36;
  if (payload.size() < expect) {
    return InvalidArgument("short MMIO frame");
  }
  msg::wire::Reader r(payload);
  Decoded d;
  d.device = PcieDeviceId(r.U32());
  d.epoch = r.U64();
  d.client_id = r.U64();
  d.seq = r.U64();
  d.reg = r.U64();
  if (is_write) {
    d.value = r.U64();
  }
  return d;
}

}  // namespace mmio_wire

obs::Span ForwardedMmioPath::StartOpSpan(const char* name,
                                         obs::TraceContext parent) {
  if (tracer_ == nullptr) {
    return obs::Span();
  }
  if (parent.traced()) {
    return tracer_->StartSpan(name, trace_host_, parent, loop_.now());
  }
  return tracer_->StartTrace(name, trace_host_, loop_.now());
}

sim::Task<Status> ForwardedMmioPath::Write(uint64_t reg, uint64_t value,
                                           obs::TraceContext parent,
                                           Nanos deadline) {
  // The seq is fixed BEFORE the first attempt: every retry re-sends the
  // same frame, so the home agent can recognize a duplicate of an already-
  // applied write and acknowledge without ringing the doorbell again.
  uint64_t seq = ++next_seq_;
  obs::Span op = StartOpSpan("mmio.write", parent);
  // Pin loop and breaker into this frame: rebind/failover may destroy this
  // path while the call is in flight, so no member access after the
  // co_await (the breaker is orchestrator-owned and outlives the path).
  sim::EventLoop& loop = loop_;
  msg::CircuitBreaker* breaker = breaker_;
  if (breaker != nullptr && !breaker->Allow(loop.now())) {
    // Open breaker: fail fast without loading the wire. kOverloaded (not
    // retryable) — the device is being given room to recover.
    op.End(loop.now());
    co_return Overloaded("circuit breaker open for device");
  }
  auto request =
      mmio_wire::EncodeWrite(device_, epoch_, client_id_, seq, reg, value);
  auto resp = co_await retry_.Call(*client_, kMethodMmioWrite, request,
                                   timeout_, loop, op.context(), deadline,
                                   msg::kPriorityData);
  op.End(loop.now());
  if (breaker != nullptr) {
    // Only transport-level failure inside a live budget trips the breaker:
    // an explicit kOverloaded push-back means the peer is alive, and an op
    // that died of its OWN deadline (budget elapsed — queue wait, shed
    // downstream) says nothing about the device. Counting budget expiry
    // would open breakers under pure overload and amputate capacity
    // exactly when demand peaks.
    bool budget_expired = deadline > 0 && loop.now() >= deadline;
    if (resp.ok()) {
      breaker->RecordSuccess(loop.now());
    } else if (msg::CircuitBreaker::IsBreakerFailure(resp.status()) &&
               !budget_expired) {
      breaker->RecordFailure(loop.now());
    }
  }
  if (!resp.ok()) {
    co_return resp.status();
  }
  co_return OkStatus();
}

sim::Task<Result<uint64_t>> ForwardedMmioPath::Read(uint64_t reg,
                                                    obs::TraceContext parent,
                                                    Nanos deadline) {
  // Reads are idempotent; they carry a seq for wire uniformity but the
  // agent never dedups them (a retried read should observe fresh state).
  uint64_t seq = ++next_seq_;
  obs::Span op = StartOpSpan("mmio.read", parent);
  // Same frame-pinning as Write: `this` may die during the await.
  sim::EventLoop& loop = loop_;
  msg::CircuitBreaker* breaker = breaker_;
  if (breaker != nullptr && !breaker->Allow(loop.now())) {
    op.End(loop.now());
    co_return Overloaded("circuit breaker open for device");
  }
  auto request = mmio_wire::EncodeRead(device_, epoch_, client_id_, seq, reg);
  auto resp = co_await retry_.Call(*client_, kMethodMmioRead, request, timeout_,
                                   loop, op.context(), deadline,
                                   msg::kPriorityData);
  op.End(loop.now());
  if (breaker != nullptr) {
    // Same rule as Write: budget expiry never blames the device.
    bool budget_expired = deadline > 0 && loop.now() >= deadline;
    if (resp.ok()) {
      breaker->RecordSuccess(loop.now());
    } else if (msg::CircuitBreaker::IsBreakerFailure(resp.status()) &&
               !budget_expired) {
      breaker->RecordFailure(loop.now());
    }
  }
  if (!resp.ok()) {
    co_return resp.status();
  }
  if (resp->size() < 8) {
    co_return Internal("short MMIO read response");
  }
  co_return msg::wire::GetU64(resp->data());
}

}  // namespace cxlpool::core
