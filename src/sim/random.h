// Deterministic pseudo-random numbers and workload distributions.
//
// The simulator never uses std::random_device or global RNG state: every
// component takes an explicit Rng (or a seed) so whole experiments replay
// bit-for-bit.
#ifndef SRC_SIM_RANDOM_H_
#define SRC_SIM_RANDOM_H_

#include <cstdint>
#include <span>
#include <vector>

namespace cxlpool::sim {

// PCG-XSH-RR 64/32 (O'Neill 2014): small, fast, statistically solid.
class Pcg32 {
 public:
  explicit Pcg32(uint64_t seed, uint64_t stream = 0xda3e39cb94b95bdbULL);

  uint32_t Next();

  // 64 bits from two draws.
  uint64_t Next64() {
    return (static_cast<uint64_t>(Next()) << 32) | Next();
  }

 private:
  uint64_t state_;
  uint64_t inc_;
};

// Convenience wrapper bundling the generator with common distributions.
class Rng {
 public:
  explicit Rng(uint64_t seed) : gen_(seed) {}

  uint32_t NextU32() { return gen_.Next(); }
  uint64_t NextU64() { return gen_.Next64(); }

  // Uniform double in [0, 1).
  double Uniform();
  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  // Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n);
  // Uniform integer in [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi);

  bool Bernoulli(double p) { return Uniform() < p; }

  // Exponential with the given mean (inter-arrival times for Poisson load).
  double Exponential(double mean);

  // Standard Box-Muller normal.
  double Normal(double mean, double stddev);

  // exp(Normal(mu, sigma)); heavy-ish tails for service times.
  double LogNormal(double mu, double sigma);

  // Pareto with scale x_m > 0 and shape alpha > 0.
  double Pareto(double scale, double shape);

  // Samples an index with probability proportional to weights[i].
  size_t Categorical(std::span<const double> weights);

 private:
  Pcg32 gen_;
  // Cached second Box-Muller variate.
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

// Zipf(s) over ranks {0, ..., n-1} via a precomputed CDF. Rank 0 is the
// hottest item. Used for skewed device/storage access patterns (§5).
class ZipfGenerator {
 public:
  ZipfGenerator(size_t n, double s);

  size_t Sample(Rng& rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

// Zipf(theta) over ranks {0, ..., n-1} by rejection-inversion (Hörmann &
// Derflinger 1996), the memtier/YCSB-style sampler: O(1) memory and O(1)
// expected draws, so it scales to key spaces of many millions where
// ZipfGenerator's O(n) CDF table does not. Rank 0 is the hottest item.
// Deterministic for a fixed Rng seed; holds no RNG state of its own.
class ZipfianSampler {
 public:
  // n >= 1 items, exponent theta > 0 (memcached-style skew is ~0.99).
  ZipfianSampler(uint64_t n, double theta);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  // H(x) = integral of x^-theta: the continuous majorizing envelope.
  double H(double x) const;
  double Hinv(double u) const;

  uint64_t n_;
  double theta_;
  double h_x1_;        // H(1.5) - 1
  double h_n_;         // H(n + 0.5)
  double threshold_;   // acceptance shortcut: 2 - Hinv(H(2.5) - 2^-theta)
};

}  // namespace cxlpool::sim

#endif  // SRC_SIM_RANDOM_H_
