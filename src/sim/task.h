// C++20 coroutine layer over the event loop.
//
// A Task<T> is a lazy coroutine: it starts running when first awaited (or
// when handed to Spawn for detached execution) and completes by resuming
// its awaiter through symmetric transfer. Actors in the simulation — hosts,
// DMA engines, the orchestrator — are written as Task-returning coroutines
// that await Delay(...) and each other.
//
//   sim::Task<int> Compute(sim::EventLoop& loop) {
//     co_await sim::Delay(loop, 50);   // 50 ns of simulated time
//     co_return 42;
//   }
//   sim::Spawn(Compute(loop));         // detached actor
//   int v = sim::RunBlocking(loop, Compute(loop));  // drive to completion
#ifndef SRC_SIM_TASK_H_
#define SRC_SIM_TASK_H_

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "src/common/check.h"
#include "src/sim/event_loop.h"

namespace cxlpool::sim {

template <typename T>
class Task;

namespace task_internal {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase {
  std::optional<T> value;

  Task<T> get_return_object();
  void return_value(T v) { value.emplace(std::move(v)); }

  T TakeResult() {
    if (exception) {
      std::rethrow_exception(exception);
    }
    CXLPOOL_CHECK(value.has_value());
    return std::move(*value);
  }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object();
  void return_void() {}

  void TakeResult() {
    if (exception) {
      std::rethrow_exception(exception);
    }
  }
};

}  // namespace task_internal

// Lazy, move-only, single-awaiter coroutine handle.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = task_internal::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_.done(); }

  // co_await support: starts the coroutine and resumes the awaiter when it
  // finishes.
  auto operator co_await() && {
    struct Awaiter {
      Handle handle;
      bool await_ready() const { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
        handle.promise().continuation = cont;
        return handle;  // symmetric transfer: start the child
      }
      T await_resume() { return handle.promise().TakeResult(); }
    };
    return Awaiter{handle_};
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  Handle handle_ = nullptr;
};

namespace task_internal {
template <typename T>
Task<T> Promise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}
inline Task<void> Promise<void>::get_return_object() {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}
}  // namespace task_internal

namespace task_internal {
// Self-destroying driver coroutine used by Spawn().
struct Detached {
  struct promise_type {
    Detached get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
};

inline Detached Drive(Task<> task) { co_await std::move(task); }
}  // namespace task_internal

// Runs `task` as a detached actor. The task starts immediately (it runs
// until its first suspension point before Spawn returns) and cleans itself
// up on completion. An exception escaping a detached task terminates.
inline void Spawn(Task<> task) { task_internal::Drive(std::move(task)); }

// Suspends the awaiting coroutine for `delay` nanoseconds of simulated
// time. A non-positive delay continues synchronously without a round trip
// through the event loop.
struct DelayAwaiter {
  EventLoop& loop;
  Nanos delay;
  bool await_ready() const { return delay <= 0; }
  void await_suspend(std::coroutine_handle<> h) const {
    loop.Schedule(delay, [h] { h.resume(); });
  }
  void await_resume() const {}
};

inline DelayAwaiter Delay(EventLoop& loop, Nanos delay) { return {loop, delay}; }

// Suspends until absolute simulated time `when`.
inline DelayAwaiter WaitUntil(EventLoop& loop, Nanos when) {
  return {loop, when - loop.now()};
}

// Drives `task` to completion by running the event loop, then returns its
// result. Intended for tests and benchmark mains. Aborts if the loop drains
// without the task finishing (i.e. the task deadlocked on an event that
// nobody will set).
template <typename T>
T RunBlocking(EventLoop& loop, Task<T> task) {
  std::optional<T> out;
  bool finished = false;
  auto driver = [](EventLoop& l, Task<T> t, std::optional<T>& slot,
                   bool& flag) -> Task<> {
    slot.emplace(co_await std::move(t));
    flag = true;
    l.Stop();  // return control even if background actors keep polling
  };
  Spawn(driver(loop, std::move(task), out, finished));
  while (!finished && !loop.empty()) {
    loop.Run();
  }
  CXLPOOL_CHECK(finished);
  return std::move(*out);
}

inline void RunBlocking(EventLoop& loop, Task<> task) {
  bool finished = false;
  auto driver = [](EventLoop& l, Task<> t, bool& flag) -> Task<> {
    co_await std::move(t);
    flag = true;
    l.Stop();
  };
  Spawn(driver(loop, std::move(task), finished));
  while (!finished && !loop.empty()) {
    loop.Run();
  }
  CXLPOOL_CHECK(finished);
}

}  // namespace cxlpool::sim

#endif  // SRC_SIM_TASK_H_
