// Link-serialization (bandwidth) model.
//
// A BandwidthQueue represents a full-duplex-direction of a link with a fixed
// byte rate and an unbounded FIFO: a transfer of B bytes issued at time t
// completes at max(t, next_free) + B/rate. Under light load latency is just
// the serialization delay; under overload the backlog grows and the caller
// observes queueing delay — this is what produces the saturation knee in the
// latency-throughput curves (Figure 3).
#ifndef SRC_SIM_BANDWIDTH_H_
#define SRC_SIM_BANDWIDTH_H_

#include <cstdint>

#include "src/common/units.h"

namespace cxlpool::sim {

class BandwidthQueue {
 public:
  // rate is in bytes per nanosecond (numerically GB/s).
  explicit BandwidthQueue(double bytes_per_ns);

  // Reserves link time for `bytes` starting no earlier than `now`; returns
  // the completion time. Monotone in call order (FIFO).
  Nanos Acquire(Nanos now, uint64_t bytes);

  // Completion time if `bytes` were issued at `now`, without reserving.
  Nanos Peek(Nanos now, uint64_t bytes) const;

  // Earliest time a new transfer could start.
  Nanos next_free() const { return next_free_; }

  // Current backlog in ns relative to `now` (0 when idle).
  Nanos Backlog(Nanos now) const { return next_free_ > now ? next_free_ - now : 0; }

  double bytes_per_ns() const { return bytes_per_ns_; }

  // Changing the rate models link degradation / failover to a narrower
  // path. Applies to transfers issued after the call.
  void set_bytes_per_ns(double rate);

  uint64_t total_bytes() const { return total_bytes_; }

  // Fraction of [0, now] the link spent busy.
  double Utilization(Nanos now) const;

  // Total busy time accumulated; callers can compute windowed rates from
  // deltas.
  Nanos busy_total() const { return busy_; }

 private:
  double bytes_per_ns_;
  Nanos next_free_ = 0;
  Nanos busy_ = 0;
  uint64_t total_bytes_ = 0;
};

}  // namespace cxlpool::sim

#endif  // SRC_SIM_BANDWIDTH_H_
