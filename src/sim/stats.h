// Measurement utilities: streaming mean/variance, an HDR-style log-bucketed
// latency histogram (≤ ~1.6% relative error on percentiles), and helpers to
// print the percentile tables the benchmark harnesses emit.
#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace cxlpool::sim {

// Welford streaming summary: count / mean / stddev / min / max.
class Summary {
 public:
  void Add(double x);

  uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Log-bucketed histogram of non-negative int64 values (latencies in ns).
// Values below 2^kSubBucketBits are exact; above, each power-of-two range
// is split into 2^kSubBucketBits sub-buckets, bounding relative error by
// 2^-kSubBucketBits.
class Histogram {
 public:
  Histogram();

  void Add(int64_t value);
  void AddN(int64_t value, uint64_t n);
  void MergeFrom(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  int64_t min() const { return count_ ? min_ : 0; }
  int64_t max() const { return count_ ? max_ : 0; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  // Value at quantile p in [0, 1]; e.g. Percentile(0.5) is the median.
  int64_t Percentile(double p) const;

  // "p50=612 p90=? ..." one-line summary used in bench output.
  std::string PercentileString() const;

  // (quantile, value) pairs for CDF plots, at the given quantiles.
  std::vector<std::pair<double, int64_t>> Cdf(const std::vector<double>& quantiles) const;

  static constexpr int kSubBucketBits = 6;  // 64 sub-buckets / octave

 private:
  static size_t BucketIndex(int64_t value);
  static int64_t BucketMidpoint(size_t index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  int64_t min_ = std::numeric_limits<int64_t>::max();
  int64_t max_ = std::numeric_limits<int64_t>::min();
};

// Exact-rate counter over simulated time windows; tracks a total and lets
// callers compute rates from (delta, window).
class Counter {
 public:
  void Add(uint64_t n = 1) { total_ += n; }
  uint64_t total() const { return total_; }
  // Returns total since the last call to TakeDelta.
  uint64_t TakeDelta() {
    uint64_t d = total_ - last_;
    last_ = total_;
    return d;
  }

 private:
  uint64_t total_ = 0;
  uint64_t last_ = 0;
};

}  // namespace cxlpool::sim

#endif  // SRC_SIM_STATS_H_
