// Polling helpers. Busy-poll loops dominate event counts in a DES; the
// standard remedy is exponential backoff while idle (which real kernel-
// bypass stacks also do to save cores). PollBackoff centralizes that
// policy: call Reset() on activity, NextDelay() before each idle re-poll.
#ifndef SRC_SIM_POLL_H_
#define SRC_SIM_POLL_H_

#include "src/common/units.h"

namespace cxlpool::sim {

class PollBackoff {
 public:
  // Polls every `min_delay` while busy, decaying to `max_delay` when idle.
  PollBackoff(Nanos min_delay, Nanos max_delay)
      : min_(min_delay), max_(max_delay), current_(min_delay) {}

  Nanos NextDelay() {
    Nanos d = current_;
    current_ = std::min(current_ * 2, max_);
    return d;
  }

  void Reset() { current_ = min_; }

  Nanos current() const { return current_; }
  Nanos min_delay() const { return min_; }
  Nanos max_delay() const { return max_; }

 private:
  Nanos min_;
  Nanos max_;
  Nanos current_;
};

// Cooperative shutdown flag shared by long-running actors (pollers, agents,
// device engines). Actors check `stopped()` in their loops; harnesses call
// Stop() before draining the event loop.
class StopToken {
 public:
  bool stopped() const { return stopped_; }
  void Stop() { stopped_ = true; }

 private:
  bool stopped_ = false;
};

}  // namespace cxlpool::sim

#endif  // SRC_SIM_POLL_H_
