// Discrete-event simulation core: a binary-heap calendar of callbacks keyed
// by simulated time (nanoseconds). Single-threaded by design — determinism
// is a feature; concurrency in the simulated system is expressed with
// coroutines (src/sim/task.h), not OS threads.
#ifndef SRC_SIM_EVENT_LOOP_H_
#define SRC_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/units.h"

namespace cxlpool::sim {

using Callback = std::function<void()>;

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Current simulated time. Starts at 0.
  Nanos now() const { return now_; }

  // Runs `cb` at absolute simulated time `when` (clamped to now()).
  // Events scheduled for the same instant run in scheduling order.
  void ScheduleAt(Nanos when, Callback cb);

  // Runs `cb` after `delay` nanoseconds of simulated time.
  void Schedule(Nanos delay, Callback cb) { ScheduleAt(now_ + delay, std::move(cb)); }

  // Processes events until the calendar is empty or Stop() is called.
  void Run();

  // Processes events with time <= `deadline`; afterwards now() == deadline
  // (unless Stop() was called earlier). Events beyond the deadline stay
  // queued.
  void RunUntil(Nanos deadline);

  // RunUntil(now() + duration).
  void RunFor(Nanos duration) { RunUntil(now_ + duration); }

  // Makes Run()/RunUntil() return after the current callback completes.
  void Stop() { stopped_ = true; }

  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }

  // Total number of callbacks executed since construction. Useful for
  // detecting runaway simulations and for the DES micro-benchmarks.
  uint64_t executed() const { return executed_; }

 private:
  struct Item {
    Nanos when;
    uint64_t seq;  // tie-breaker: FIFO among same-time events
    Callback cb;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // Pops and runs the earliest event. Precondition: !empty().
  void RunOne();

  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  Nanos now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace cxlpool::sim

#endif  // SRC_SIM_EVENT_LOOP_H_
