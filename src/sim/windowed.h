// WindowedUtilization: converts a monotonically accumulating busy-time
// counter into a recent-window utilization figure. Orchestrator policy
// must react to *current* load; a cumulative average would make a
// just-repaired device look idle forever and a once-hot device look busy
// forever (lease ping-pong).
#ifndef SRC_SIM_WINDOWED_H_
#define SRC_SIM_WINDOWED_H_

#include <algorithm>

#include "src/common/units.h"

namespace cxlpool::sim {

class WindowedUtilization {
 public:
  explicit WindowedUtilization(Nanos window = 200 * kMicrosecond)
      : window_(window) {}

  // `busy_total` is the accumulated busy time (possibly x capacity units);
  // `capacity` scales the denominator (e.g. engine count).
  double Update(Nanos now, Nanos busy_total, double capacity) {
    if (now - window_start_ >= window_) {
      Nanos elapsed = now - window_start_;
      Nanos busy = busy_total - busy_at_start_;
      last_ = std::clamp(
          static_cast<double>(busy) / (static_cast<double>(elapsed) * capacity),
          0.0, 1.0);
      window_start_ = now;
      busy_at_start_ = busy_total;
    }
    return last_;
  }

  double last() const { return last_; }

 private:
  Nanos window_;
  Nanos window_start_ = 0;
  Nanos busy_at_start_ = 0;
  double last_ = 0.0;
};

}  // namespace cxlpool::sim

#endif  // SRC_SIM_WINDOWED_H_
