#include "src/sim/logger.h"

#include <cstdio>
#include <cstring>

#include "src/sim/event_loop.h"

namespace cxlpool::sim {

namespace {
LogLevel g_level = LogLevel::kWarning;
const EventLoop* g_clock = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }
void SetLogClock(const EventLoop* loop) { g_clock = loop; }

namespace log_internal {
void Emit(LogLevel level, const char* file, int line, const std::string& msg) {
  if (g_clock != nullptr) {
    std::fprintf(stderr, "[%s t=%lldns %s:%d] %s\n", LevelName(level),
                 static_cast<long long>(g_clock->now()), Basename(file), line,
                 msg.c_str());
  } else {
    std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file), line,
                 msg.c_str());
  }
}
}  // namespace log_internal

}  // namespace cxlpool::sim
