// ChaosInjector: deterministic, seed-driven fault injection for soak and
// robustness tests. The harness registers named faults (paired fail/repair
// callbacks — an MHD, a CXL link, a device, a whole host), liveness
// invariants, and one end-to-end recovery probe. The injector then either
// replays a hand-written schedule or pre-plans a randomized one from an
// explicit seed.
//
// Determinism is the contract: the entire randomized schedule is drawn from
// the Rng up front at ScheduleRandom() time, so no RNG draw ever interleaves
// with simulation state, and the executed trace (and therefore TraceDigest())
// is bit-for-bit identical across same-seed runs.
#ifndef SRC_SIM_CHAOS_H_
#define SRC_SIM_CHAOS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/sim/event_loop.h"
#include "src/sim/poll.h"
#include "src/sim/random.h"
#include "src/sim/stats.h"
#include "src/sim/task.h"

namespace cxlpool::sim {

class ChaosInjector {
 public:
  struct Options {
    uint64_t seed = 1;
    // Randomized schedules: gap between a repair and the next failure is
    // Exponential(mean_interval); outage length is Uniform[min, max).
    Nanos mean_interval = 500 * kMicrosecond;
    Nanos min_outage = 50 * kMicrosecond;
    Nanos max_outage = 300 * kMicrosecond;
    // Recovery probing cadence and the point at which a non-recovering
    // system is declared a liveness violation.
    Nanos probe_interval = 10 * kMicrosecond;
    Nanos probe_timeout = 5 * kMillisecond;
  };

  ChaosInjector(EventLoop& loop, Options options)
      : loop_(loop), options_(options), rng_(options.seed) {}
  ChaosInjector(const ChaosInjector&) = delete;
  ChaosInjector& operator=(const ChaosInjector&) = delete;

  // Registers a fault the injector may fire. Both callbacks must be
  // idempotent-safe for a single fire/repair pair. `fault_class` buckets
  // the fault's recoveries into a per-class MTTR histogram (host-crash vs
  // link vs wedge recover through very different machinery; one global
  // histogram hides the slow class). The 3-arg form uses the fault's own
  // name as its class.
  void AddFault(std::string name, std::function<void()> fail,
                std::function<void()> repair);
  void AddFault(std::string name, std::string fault_class,
                std::function<void()> fail, std::function<void()> repair);
  size_t fault_count() const { return faults_.size(); }

  // Safety invariant, checked after every recovery: returns an empty string
  // while it holds, else a description of the violation.
  using Invariant = std::function<std::string()>;
  void AddInvariant(std::string name, Invariant check);

  // End-to-end liveness probe: true when the system serves requests again
  // (e.g. an Acquire+op round trip succeeds). Recovery may happen before
  // the fault is repaired — that is failover working as intended.
  void SetRecoveryProbe(std::function<bool()> probe);

  // Scripted injection: fail fault `fault_index` at `at`, repair it at
  // `at + outage`. Events must be added in nondecreasing `at` order and
  // must not overlap (at >= previous at + outage).
  void ScheduleFail(Nanos at, size_t fault_index, Nanos outage);

  // Randomized injection: plans a serialized fail/repair schedule over
  // [from, until) from the seed. Callable after all AddFault() calls.
  void ScheduleRandom(Nanos from, Nanos until);

  // Spawns the injection task. Requires a recovery probe and a plan.
  void Start(StopToken& stop);

  struct Event {
    Nanos at = 0;
    size_t fault = 0;
    Nanos outage = 0;
  };
  const std::vector<Event>& plan() const { return plan_; }

  // --- Results ---
  // Time from fault injection to the recovery probe turning true.
  const Histogram& mttr() const { return mttr_; }
  // Same, bucketed by the fault_class given at AddFault() time.
  const std::map<std::string, Histogram>& mttr_by_class() const {
    return mttr_by_class_;
  }
  uint64_t injections() const { return injections_; }
  // Injections bucketed by fault_class, counted at fire time — harnesses
  // assert a class actually fired (a class with zero injections silently
  // proves nothing about the machinery it targets).
  const std::map<std::string, uint64_t>& injections_by_class() const {
    return injections_by_class_;
  }
  uint64_t recoveries() const { return recoveries_; }
  uint64_t violations() const { return violations_; }
  const std::vector<std::string>& violation_log() const { return violation_log_; }

  // Full executed trace (one line per fail/repair/recover/violation) and a
  // compact fingerprint of it; same seed => same digest, bit for bit.
  const std::string& trace() const { return trace_; }
  std::string TraceDigest() const;

  // Optional observer invoked synchronously with every executed-trace line.
  // Harnesses use it to mirror chaos events into an external flight
  // recorder; the hook must not perturb simulation state (the trace — and
  // its digest — is recorded before the hook runs either way).
  void SetEventHook(std::function<void(const std::string&)> hook) {
    event_hook_ = std::move(hook);
  }

 private:
  struct Fault {
    std::string name;
    std::string fault_class;
    std::function<void()> fail;
    std::function<void()> repair;
  };

  Task<> RunPlan(StopToken& stop);
  void CheckInvariants();
  void Note(const std::string& line);

  EventLoop& loop_;
  Options options_;
  Rng rng_;
  std::vector<Fault> faults_;
  std::vector<std::pair<std::string, Invariant>> invariants_;
  std::function<bool()> recovery_probe_;
  std::vector<Event> plan_;
  Histogram mttr_;
  std::map<std::string, Histogram> mttr_by_class_;
  uint64_t injections_ = 0;
  std::map<std::string, uint64_t> injections_by_class_;
  uint64_t recoveries_ = 0;
  uint64_t violations_ = 0;
  std::vector<std::string> violation_log_;
  std::string trace_;
  std::function<void(const std::string&)> event_hook_;
  bool started_ = false;
};

}  // namespace cxlpool::sim

#endif  // SRC_SIM_CHAOS_H_
