#include "src/sim/chaos.h"

#include <algorithm>
#include <cstdio>

#include "src/common/check.h"
#include "src/sim/logger.h"

namespace cxlpool::sim {

void ChaosInjector::AddFault(std::string name, std::function<void()> fail,
                             std::function<void()> repair) {
  std::string fault_class = name;
  AddFault(std::move(name), std::move(fault_class), std::move(fail),
           std::move(repair));
}

void ChaosInjector::AddFault(std::string name, std::string fault_class,
                             std::function<void()> fail,
                             std::function<void()> repair) {
  CXLPOOL_CHECK(!started_);
  CXLPOOL_CHECK(fail != nullptr);
  CXLPOOL_CHECK(repair != nullptr);
  faults_.push_back(Fault{std::move(name), std::move(fault_class),
                          std::move(fail), std::move(repair)});
}

void ChaosInjector::AddInvariant(std::string name, Invariant check) {
  CXLPOOL_CHECK(check != nullptr);
  invariants_.emplace_back(std::move(name), std::move(check));
}

void ChaosInjector::SetRecoveryProbe(std::function<bool()> probe) {
  recovery_probe_ = std::move(probe);
}

void ChaosInjector::ScheduleFail(Nanos at, size_t fault_index, Nanos outage) {
  CXLPOOL_CHECK(!started_);
  CXLPOOL_CHECK(fault_index < faults_.size());
  CXLPOOL_CHECK(outage > 0);
  if (!plan_.empty()) {
    CXLPOOL_CHECK(at >= plan_.back().at + plan_.back().outage);
  }
  plan_.push_back(Event{at, fault_index, outage});
}

void ChaosInjector::ScheduleRandom(Nanos from, Nanos until) {
  CXLPOOL_CHECK(!started_);
  CXLPOOL_CHECK(!faults_.empty());
  // The whole schedule is drawn here, before any event runs: next failure
  // time, victim, and outage length come from the seed alone, never from
  // runtime state. Events are serialized (next fail >= previous repair).
  Nanos t = plan_.empty() ? from : std::max(from, plan_.back().at + plan_.back().outage);
  for (;;) {
    t += static_cast<Nanos>(rng_.Exponential(static_cast<double>(options_.mean_interval)));
    if (t >= until) {
      break;
    }
    size_t fault = rng_.UniformInt(static_cast<uint64_t>(faults_.size()));
    Nanos outage = static_cast<Nanos>(
        rng_.Uniform(static_cast<double>(options_.min_outage),
                     static_cast<double>(options_.max_outage)));
    outage = std::max<Nanos>(outage, 1);
    plan_.push_back(Event{t, fault, outage});
    t += outage;
  }
}

void ChaosInjector::Start(StopToken& stop) {
  CXLPOOL_CHECK(!started_);
  CXLPOOL_CHECK(recovery_probe_ != nullptr);
  started_ = true;
  Spawn(RunPlan(stop));
}

void ChaosInjector::Note(const std::string& line) {
  trace_ += line;
  trace_ += '\n';
  if (event_hook_) {
    event_hook_(line);
  }
}

void ChaosInjector::CheckInvariants() {
  for (auto& [name, check] : invariants_) {
    std::string violation = check();
    if (!violation.empty()) {
      ++violations_;
      std::string entry = "t=" + std::to_string(loop_.now()) + " invariant " +
                          name + " violated: " + violation;
      violation_log_.push_back(entry);
      Note(entry);
      CXLPOOL_LOG(Warning) << "chaos: " << entry;
    }
  }
}

Task<> ChaosInjector::RunPlan(StopToken& stop) {
  for (const Event& ev : plan_) {
    if (stop.stopped()) {
      co_return;
    }
    if (loop_.now() < ev.at) {
      co_await WaitUntil(loop_, ev.at);
    }
    if (stop.stopped()) {
      co_return;
    }
    const Fault& fault = faults_[ev.fault];
    Nanos failed_at = loop_.now();
    fault.fail();
    ++injections_;
    ++injections_by_class_[fault.fault_class];
    Note("t=" + std::to_string(failed_at) + " fail " + fault.name +
         " outage=" + std::to_string(ev.outage));

    // Probe for recovery while the outage lasts: failover may restore
    // service before the fault is repaired.
    Nanos repair_at = failed_at + ev.outage;
    Nanos recovered_at = -1;
    while (loop_.now() < repair_at && !stop.stopped()) {
      if (recovered_at < 0 && recovery_probe_()) {
        recovered_at = loop_.now();
      }
      Nanos step = std::min(options_.probe_interval, repair_at - loop_.now());
      co_await Delay(loop_, step);
    }
    fault.repair();
    Note("t=" + std::to_string(loop_.now()) + " repair " + fault.name);

    // After repair, recovery must eventually come; a system that stays down
    // past probe_timeout has lost liveness.
    while (recovered_at < 0 && !stop.stopped()) {
      if (recovery_probe_()) {
        recovered_at = loop_.now();
        break;
      }
      if (loop_.now() - failed_at > options_.probe_timeout) {
        ++violations_;
        std::string entry = "t=" + std::to_string(loop_.now()) +
                            " no recovery from " + fault.name + " within " +
                            std::to_string(options_.probe_timeout) + "ns";
        violation_log_.push_back(entry);
        Note(entry);
        CXLPOOL_LOG(Warning) << "chaos: " << entry;
        break;
      }
      co_await Delay(loop_, options_.probe_interval);
    }
    if (recovered_at >= 0) {
      ++recoveries_;
      mttr_.Add(recovered_at - failed_at);
      mttr_by_class_[fault.fault_class].Add(recovered_at - failed_at);
      Note("t=" + std::to_string(loop_.now()) + " recovered " + fault.name +
           " mttr=" + std::to_string(recovered_at - failed_at));
    }
    CheckInvariants();
  }
}

std::string ChaosInjector::TraceDigest() const {
  // FNV-1a over the executed trace plus headline counters: cheap, stable,
  // and any cross-run divergence (ordering, timing, outcome) changes it.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : trace_) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(hex) + " injections=" + std::to_string(injections_) +
         " recoveries=" + std::to_string(recoveries_) +
         " violations=" + std::to_string(violations_);
}

}  // namespace cxlpool::sim
