#include "src/sim/bandwidth.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace cxlpool::sim {

BandwidthQueue::BandwidthQueue(double bytes_per_ns) : bytes_per_ns_(bytes_per_ns) {
  CXLPOOL_CHECK(bytes_per_ns > 0);
}

Nanos BandwidthQueue::Acquire(Nanos now, uint64_t bytes) {
  Nanos start = std::max(now, next_free_);
  Nanos duration =
      static_cast<Nanos>(std::ceil(static_cast<double>(bytes) / bytes_per_ns_));
  next_free_ = start + duration;
  busy_ += duration;
  total_bytes_ += bytes;
  return next_free_;
}

Nanos BandwidthQueue::Peek(Nanos now, uint64_t bytes) const {
  Nanos start = std::max(now, next_free_);
  Nanos duration =
      static_cast<Nanos>(std::ceil(static_cast<double>(bytes) / bytes_per_ns_));
  return start + duration;
}

void BandwidthQueue::set_bytes_per_ns(double rate) {
  CXLPOOL_CHECK(rate > 0);
  bytes_per_ns_ = rate;
}

double BandwidthQueue::Utilization(Nanos now) const {
  if (now <= 0) {
    return 0.0;
  }
  return std::min(1.0, static_cast<double>(busy_) / static_cast<double>(now));
}

}  // namespace cxlpool::sim
