// Coroutine synchronization primitives for the simulator: latched events,
// counting semaphores, and an awaitable FIFO queue. All are single-threaded
// (simulated concurrency only); wakeups go through the event loop at the
// current instant so resumption is never re-entrant.
#ifndef SRC_SIM_SYNC_H_
#define SRC_SIM_SYNC_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/sim/event_loop.h"
#include "src/sim/task.h"

namespace cxlpool::sim {

// A latched (manual-reset) event. Wait() returns immediately when the event
// is set; Set() latches and wakes all current waiters. Waiters that guard a
// condition should loop: `while (!cond) { co_await e.Wait(); e.Reset(); }`.
class Event {
 public:
  explicit Event(EventLoop& loop) : loop_(loop) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool is_set() const { return set_; }

  void Set() {
    set_ = true;
    WakeAll();
  }

  void Reset() { set_ = false; }

  auto Wait() {
    struct Awaiter {
      Event& event;
      bool await_ready() const { return event.set_; }
      void await_suspend(std::coroutine_handle<> h) { event.waiters_.push_back(h); }
      void await_resume() const {}
    };
    return Awaiter{*this};
  }

  size_t waiter_count() const { return waiters_.size(); }

 private:
  void WakeAll() {
    if (waiters_.empty()) {
      return;
    }
    std::vector<std::coroutine_handle<>> batch;
    batch.swap(waiters_);
    for (auto h : batch) {
      loop_.Schedule(0, [h] { h.resume(); });
    }
  }

  EventLoop& loop_;
  std::vector<std::coroutine_handle<>> waiters_;
  bool set_ = false;
};

// Counting semaphore. Used to model limited resources (worker cores, queue
// slots) inside simulated hosts.
class Semaphore {
 public:
  Semaphore(EventLoop& loop, int64_t initial)
      : count_(initial), available_(loop) {}

  Task<> Acquire(int64_t n = 1) {
    while (count_ < n) {
      co_await available_.Wait();
      available_.Reset();
    }
    count_ -= n;
  }

  // Non-blocking acquire; returns false if insufficient permits.
  bool TryAcquire(int64_t n = 1) {
    if (count_ < n) {
      return false;
    }
    count_ -= n;
    return true;
  }

  void Release(int64_t n = 1) {
    count_ += n;
    available_.Set();
  }

  int64_t count() const { return count_; }

 private:
  int64_t count_;
  Event available_;
};

// An awaitable unbounded FIFO queue. Any number of producers and consumers;
// consumers block (in simulated time) while the queue is empty.
template <typename T>
class Queue {
 public:
  explicit Queue(EventLoop& loop) : not_empty_(loop) {}

  void Push(T item) {
    items_.push_back(std::move(item));
    not_empty_.Set();
  }

  Task<T> Pop() {
    while (items_.empty()) {
      co_await not_empty_.Wait();
      not_empty_.Reset();
    }
    T v = std::move(items_.front());
    items_.pop_front();
    co_return v;
  }

  bool TryPop(T* out) {
    if (items_.empty()) {
      return false;
    }
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  bool empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }

 private:
  Event not_empty_;
  std::deque<T> items_;
};

}  // namespace cxlpool::sim

#endif  // SRC_SIM_SYNC_H_
