#include "src/sim/random.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace cxlpool::sim {

Pcg32::Pcg32(uint64_t seed, uint64_t stream) : state_(0), inc_((stream << 1) | 1) {
  Next();
  state_ += seed;
  Next();
}

uint32_t Pcg32::Next() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18) ^ old) >> 27);
  uint32_t rot = static_cast<uint32_t>(old >> 59);
  return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

double Rng::Uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(gen_.Next64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  CXLPOOL_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = gen_.Next64();
    if (r >= threshold) {
      return r % n;
    }
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CXLPOOL_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Exponential(double mean) {
  CXLPOOL_CHECK(mean > 0);
  double u;
  do {
    u = Uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  double u2 = Uniform();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_normal_ = true;
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

double Rng::Pareto(double scale, double shape) {
  CXLPOOL_CHECK(scale > 0 && shape > 0);
  double u;
  do {
    u = Uniform();
  } while (u <= 0.0);
  return scale / std::pow(u, 1.0 / shape);
}

size_t Rng::Categorical(std::span<const double> weights) {
  CXLPOOL_CHECK(!weights.empty());
  double total = 0;
  for (double w : weights) {
    CXLPOOL_DCHECK(w >= 0);
    total += w;
  }
  CXLPOOL_CHECK(total > 0);
  double x = Uniform() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (x < acc) {
      return i;
    }
  }
  return weights.size() - 1;
}

ZipfGenerator::ZipfGenerator(size_t n, double s) {
  CXLPOOL_CHECK(n > 0);
  cdf_.resize(n);
  double acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (size_t i = 0; i < n; ++i) {
    cdf_[i] /= acc;
  }
}

size_t ZipfGenerator::Sample(Rng& rng) const {
  double u = rng.Uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size() - 1;
  }
  return static_cast<size_t>(it - cdf_.begin());
}

ZipfianSampler::ZipfianSampler(uint64_t n, double theta) : n_(n), theta_(theta) {
  CXLPOOL_CHECK(n >= 1);
  CXLPOOL_CHECK(theta > 0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - Hinv(H(2.5) - std::pow(2.0, -theta_));
}

double ZipfianSampler::H(double x) const {
  // (x^{1-theta} - 1) / (1 - theta); the limit for theta -> 1 is ln(x).
  double one_minus = 1.0 - theta_;
  if (std::abs(one_minus) < 1e-9) {
    return std::log(x);
  }
  return (std::pow(x, one_minus) - 1.0) / one_minus;
}

double ZipfianSampler::Hinv(double u) const {
  double one_minus = 1.0 - theta_;
  if (std::abs(one_minus) < 1e-9) {
    return std::exp(u);
  }
  return std::pow(1.0 + u * one_minus, 1.0 / one_minus);
}

uint64_t ZipfianSampler::Sample(Rng& rng) const {
  if (n_ == 1) {
    return 0;
  }
  for (;;) {
    double u = h_x1_ + rng.Uniform() * (h_n_ - h_x1_);
    double x = Hinv(u);
    double clamped = std::min(std::max(x, 1.0), static_cast<double>(n_));
    uint64_t k = static_cast<uint64_t>(clamped + 0.5);
    k = std::min(std::max<uint64_t>(k, 1), n_);
    // Accept k either via the cheap shortcut (x close enough to k that the
    // envelope cannot cross) or the exact rejection test.
    if (static_cast<double>(k) - x <= threshold_ ||
        u >= H(static_cast<double>(k) + 0.5) - std::pow(static_cast<double>(k), -theta_)) {
      return k - 1;  // 0-based rank; rank 0 hottest
    }
  }
}

}  // namespace cxlpool::sim
