#include "src/sim/event_loop.h"

#include <utility>

#include "src/common/check.h"

namespace cxlpool::sim {

void EventLoop::ScheduleAt(Nanos when, Callback cb) {
  CXLPOOL_DCHECK(cb != nullptr);
  if (when < now_) {
    when = now_;  // never travel back in time
  }
  heap_.push(Item{when, next_seq_++, std::move(cb)});
}

void EventLoop::RunOne() {
  // priority_queue::top() is const; the callback must be moved out before
  // pop() so re-entrant scheduling from inside the callback is safe.
  Item item = std::move(const_cast<Item&>(heap_.top()));
  heap_.pop();
  now_ = item.when;
  ++executed_;
  item.cb();
}

void EventLoop::Run() {
  stopped_ = false;
  while (!heap_.empty() && !stopped_) {
    RunOne();
  }
}

void EventLoop::RunUntil(Nanos deadline) {
  stopped_ = false;
  while (!heap_.empty() && !stopped_ && heap_.top().when <= deadline) {
    RunOne();
  }
  if (!stopped_ && now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace cxlpool::sim
