// Minimal leveled logger. Disabled levels cost one branch. Messages carry
// the simulated timestamp when a loop is attached.
#ifndef SRC_SIM_LOGGER_H_
#define SRC_SIM_LOGGER_H_

#include <sstream>
#include <string>

#include "src/common/units.h"

namespace cxlpool::sim {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

// Global minimum level; default kWarning so tests and benches stay quiet.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Optional simulated-time source for log prefixes.
class EventLoop;
void SetLogClock(const EventLoop* loop);

namespace log_internal {
void Emit(LogLevel level, const char* file, int line, const std::string& msg);

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { Emit(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace log_internal

}  // namespace cxlpool::sim

#define CXLPOOL_LOG(level)                                                    \
  if (::cxlpool::sim::LogLevel::k##level < ::cxlpool::sim::GetLogLevel()) {   \
  } else                                                                      \
    ::cxlpool::sim::log_internal::LogLine(::cxlpool::sim::LogLevel::k##level, \
                                          __FILE__, __LINE__)

#endif  // SRC_SIM_LOGGER_H_
