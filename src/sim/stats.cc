#include "src/sim/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "src/common/check.h"

namespace cxlpool::sim {

void Summary::Add(double x) {
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Summary::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

namespace {
constexpr int kSubBits = Histogram::kSubBucketBits;
constexpr uint64_t kSubCount = 1ULL << kSubBits;
// 63-bit values -> at most (63 - kSubBits + 1) octaves above the linear
// region, each with kSubCount sub-buckets.
constexpr size_t kMaxBuckets = kSubCount + (64 - kSubBits) * kSubCount;
}  // namespace

Histogram::Histogram() : buckets_(kMaxBuckets, 0) {}

size_t Histogram::BucketIndex(int64_t value) {
  CXLPOOL_DCHECK(value >= 0);
  uint64_t v = static_cast<uint64_t>(value);
  if (v < kSubCount) {
    return static_cast<size_t>(v);
  }
  int h = 63 - std::countl_zero(v);  // floor(log2(v)), h >= kSubBits
  int shift = h - kSubBits;
  uint64_t sub = (v >> shift) - kSubCount;  // in [0, kSubCount)
  return static_cast<size_t>(((static_cast<uint64_t>(shift) + 1) << kSubBits) + sub);
}

int64_t Histogram::BucketMidpoint(size_t index) {
  if (index < kSubCount) {
    return static_cast<int64_t>(index);
  }
  uint64_t top = index >> kSubBits;    // shift + 1
  uint64_t sub = index & (kSubCount - 1);
  int shift = static_cast<int>(top - 1);
  uint64_t lo = (kSubCount + sub) << shift;
  uint64_t width = 1ULL << shift;
  return static_cast<int64_t>(lo + width / 2);
}

void Histogram::Add(int64_t value) { AddN(value, 1); }

void Histogram::AddN(int64_t value, uint64_t n) {
  if (value < 0) {
    value = 0;
  }
  buckets_[BucketIndex(value)] += n;
  count_ += n;
  sum_ += static_cast<double>(value) * static_cast<double>(n);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::MergeFrom(const Histogram& other) {
  CXLPOOL_CHECK(buckets_.size() == other.buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<int64_t>::max();
  max_ = std::numeric_limits<int64_t>::min();
}

int64_t Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 1.0);
  if (p >= 1.0) {
    return max_;
  }
  uint64_t target = static_cast<uint64_t>(std::ceil(p * static_cast<double>(count_)));
  if (target == 0) {
    target = 1;
  }
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      // Clamp to observed extremes so tails are not inflated by bucket width.
      return std::clamp(BucketMidpoint(i), min_, max_);
    }
  }
  return max_;
}

std::string Histogram::PercentileString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.0f p50=%lld p90=%lld p99=%lld p999=%lld max=%lld",
                static_cast<unsigned long long>(count_), mean(),
                static_cast<long long>(Percentile(0.50)),
                static_cast<long long>(Percentile(0.90)),
                static_cast<long long>(Percentile(0.99)),
                static_cast<long long>(Percentile(0.999)),
                static_cast<long long>(max()));
  return buf;
}

std::vector<std::pair<double, int64_t>> Histogram::Cdf(
    const std::vector<double>& quantiles) const {
  std::vector<std::pair<double, int64_t>> out;
  out.reserve(quantiles.size());
  for (double q : quantiles) {
    out.emplace_back(q, Percentile(q));
  }
  return out;
}

}  // namespace cxlpool::sim
