// Lightweight Status / Result<T> error handling, in the spirit of
// absl::Status. The library does not use exceptions on its main paths;
// recoverable failures travel as Status values and programming errors
// abort via CHECK (see src/common/check.h).
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace cxlpool {

// Canonical error codes. Deliberately a small subset of the gRPC canon —
// only the codes this codebase actually distinguishes.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kInternal,
  kUnimplemented,
  kAborted,
  kDeadlineExceeded,
  // Stored bytes are gone: poisoned media line, unrecoverable ECC. Unlike
  // kUnavailable the data will NOT come back by retrying the same replica —
  // recovery requires another copy (scrub/repair path).
  kDataLoss,
  // Explicit push-back from a backpressure point: a bounded queue refused
  // the request or a load shedder dropped it. Distinct from
  // kDeadlineExceeded (the peer may be perfectly healthy, just saturated)
  // and deliberately NOT retryable — retrying into an overloaded path is
  // retry amplification, the exact collapse the shedder exists to prevent.
  kOverloaded,
};

// Human-readable name of a status code ("OK", "NOT_FOUND", ...).
std::string_view StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy when OK (no allocation).
// [[nodiscard]]: silently dropping a Status swallows an error; discard
// explicitly with (void) where failure is genuinely tolerable.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "NOT_FOUND: no such device".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

Status OkStatus();
Status InvalidArgument(std::string msg);
Status NotFound(std::string msg);
Status AlreadyExists(std::string msg);
Status OutOfRange(std::string msg);
Status ResourceExhausted(std::string msg);
Status FailedPrecondition(std::string msg);
Status Unavailable(std::string msg);
Status Internal(std::string msg);
Status Unimplemented(std::string msg);
Status Aborted(std::string msg);
Status DeadlineExceeded(std::string msg);
Status DataLoss(std::string msg);
Status Overloaded(std::string msg);

// A value-or-error. `value()` aborts if called on an error result, so call
// sites either check `ok()` first or use ASSIGN_OR_RETURN.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status(StatusCode::kInternal, "OK status used to build error Result");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    AbortIfError();
    return *value_;
  }
  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void AbortIfError() const;

  std::optional<T> value_;
  Status status_;  // OK iff value_ present
};

namespace status_internal {
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace status_internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) {
    status_internal::DieOnBadResultAccess(status_);
  }
}

}  // namespace cxlpool

// Propagates a non-OK Status from an expression to the caller.
#define RETURN_IF_ERROR(expr)                       \
  do {                                              \
    ::cxlpool::Status _st = (expr);                 \
    if (!_st.ok()) {                                \
      return _st;                                   \
    }                                               \
  } while (0)

// Coroutine variant: co_returns the error Status. The expression may
// itself contain a co_await.
#define CO_RETURN_IF_ERROR(expr)                    \
  do {                                              \
    ::cxlpool::Status _st = (expr);                 \
    if (!_st.ok()) {                                \
      co_return _st;                                \
    }                                               \
  } while (0)

#define CXLPOOL_CONCAT_INNER_(a, b) a##b
#define CXLPOOL_CONCAT_(a, b) CXLPOOL_CONCAT_INNER_(a, b)

// ASSIGN_OR_RETURN(auto x, Compute()) — unwraps a Result or propagates
// its Status.
#define ASSIGN_OR_RETURN(decl, expr)                            \
  auto CXLPOOL_CONCAT_(_res_, __LINE__) = (expr);               \
  if (!CXLPOOL_CONCAT_(_res_, __LINE__).ok()) {                 \
    return CXLPOOL_CONCAT_(_res_, __LINE__).status();           \
  }                                                             \
  decl = std::move(CXLPOOL_CONCAT_(_res_, __LINE__)).value()

#endif  // SRC_COMMON_STATUS_H_
