// Strong integer ID types. Each entity class in the simulation (host, CXL
// device, PCIe device, ...) gets its own incompatible ID type so they cannot
// be mixed up at call sites.
#ifndef SRC_COMMON_IDS_H_
#define SRC_COMMON_IDS_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace cxlpool {

// A strongly typed wrapper over uint32_t. `Tag` only disambiguates types.
template <typename Tag>
class Id {
 public:
  constexpr Id() : value_(kInvalidValue) {}
  constexpr explicit Id(uint32_t value) : value_(value) {}

  static constexpr Id Invalid() { return Id(); }

  constexpr uint32_t value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalidValue; }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    if (!id.valid()) {
      return os << "<invalid>";
    }
    return os << id.value_;
  }

 private:
  static constexpr uint32_t kInvalidValue = std::numeric_limits<uint32_t>::max();
  uint32_t value_;
};

struct HostTag {};
struct MhdTag {};      // multi-headed CXL memory device
struct CxlLinkTag {};
struct PcieDeviceTag {};
struct ChannelTag {};
struct VmTag {};
struct FlowTag {};

using HostId = Id<HostTag>;
using MhdId = Id<MhdTag>;
using CxlLinkId = Id<CxlLinkTag>;
using PcieDeviceId = Id<PcieDeviceTag>;
using ChannelId = Id<ChannelTag>;
using VmId = Id<VmTag>;
using FlowId = Id<FlowTag>;

}  // namespace cxlpool

namespace std {
template <typename Tag>
struct hash<cxlpool::Id<Tag>> {
  size_t operator()(cxlpool::Id<Tag> id) const noexcept {
    return std::hash<uint32_t>()(id.value());
  }
};
}  // namespace std

#endif  // SRC_COMMON_IDS_H_
