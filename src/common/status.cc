#include "src/common/status.h"

#include <cstdio>
#include <cstdlib>

namespace cxlpool {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kOverloaded:
      return "OVERLOADED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

Status OkStatus() { return Status(); }
Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
Status Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
Status Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
Status Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
Status Aborted(std::string msg) {
  return Status(StatusCode::kAborted, std::move(msg));
}
Status DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
Status DataLoss(std::string msg) {
  return Status(StatusCode::kDataLoss, std::move(msg));
}
Status Overloaded(std::string msg) {
  return Status(StatusCode::kOverloaded, std::move(msg));
}

namespace status_internal {
void DieOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "FATAL: Result accessed with error status: %s\n",
               status.ToString().c_str());
  std::abort();
}
}  // namespace status_internal

}  // namespace cxlpool
