// CHECK macros for invariants that indicate programmer error. These abort
// the process with a location message; they are not for recoverable errors
// (use Status for those).
//
// A process-global failure hook runs once, just before abort, on every CHECK
// path. Observability installs a flight-recorder dump there, so a failed
// invariant prints the last-N events that led up to it instead of just the
// failing expression.
#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <utility>

namespace cxlpool {
namespace check_internal {

inline std::function<void()>& FailureHook() {
  static std::function<void()> hook;
  return hook;
}

// Runs the registered hook at most once (the hook itself may CHECK).
inline void RunFailureHook() {
  static bool ran = false;
  if (!ran && FailureHook()) {
    ran = true;
    FailureHook()();
  }
}

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "FATAL %s:%d: CHECK failed: %s\n", file, line, expr);
  RunFailureHook();
  std::abort();
}

}  // namespace check_internal

// Registers `hook` to run before abort on any CHECK failure. Pass an empty
// function to clear. Last registration wins (single hook by design — the
// only client is the observability dump).
inline void SetCheckFailureHook(std::function<void()> hook) {
  check_internal::FailureHook() = std::move(hook);
}

}  // namespace cxlpool

#define CXLPOOL_CHECK(expr)                                            \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::cxlpool::check_internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                                  \
  } while (0)

// Like CXLPOOL_CHECK but appends a printf-formatted context message, for
// invariants where the bare expression text is not enough to debug the
// failure (e.g. which backend, at what offset).
#define CXLPOOL_CHECK_MSG(expr, ...)                                       \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::fprintf(stderr, "FATAL %s:%d: CHECK failed: %s: ", __FILE__,    \
                   __LINE__, #expr);                                       \
      std::fprintf(stderr, __VA_ARGS__);                                   \
      std::fprintf(stderr, "\n");                                          \
      ::cxlpool::check_internal::RunFailureHook();                         \
      std::abort();                                                       \
    }                                                                      \
  } while (0)

#define CXLPOOL_CHECK_OK(status_expr)                                   \
  do {                                                                  \
    const ::cxlpool::Status _s = (status_expr);                         \
    if (!_s.ok()) {                                                     \
      std::fprintf(stderr, "FATAL %s:%d: status not OK: %s\n", __FILE__, \
                   __LINE__, _s.ToString().c_str());                    \
      ::cxlpool::check_internal::RunFailureHook();                      \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

#ifdef NDEBUG
#define CXLPOOL_DCHECK(expr) \
  do {                       \
  } while (0)
#else
#define CXLPOOL_DCHECK(expr) CXLPOOL_CHECK(expr)
#endif

#endif  // SRC_COMMON_CHECK_H_
