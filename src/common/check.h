// CHECK macros for invariants that indicate programmer error. These abort
// the process with a location message; they are not for recoverable errors
// (use Status for those).
#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace cxlpool {
namespace check_internal {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "FATAL %s:%d: CHECK failed: %s\n", file, line, expr);
  std::abort();
}

}  // namespace check_internal
}  // namespace cxlpool

#define CXLPOOL_CHECK(expr)                                            \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::cxlpool::check_internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                                  \
  } while (0)

// Like CXLPOOL_CHECK but appends a printf-formatted context message, for
// invariants where the bare expression text is not enough to debug the
// failure (e.g. which backend, at what offset).
#define CXLPOOL_CHECK_MSG(expr, ...)                                       \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::fprintf(stderr, "FATAL %s:%d: CHECK failed: %s: ", __FILE__,    \
                   __LINE__, #expr);                                       \
      std::fprintf(stderr, __VA_ARGS__);                                   \
      std::fprintf(stderr, "\n");                                          \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define CXLPOOL_CHECK_OK(status_expr)                                   \
  do {                                                                  \
    const ::cxlpool::Status _s = (status_expr);                         \
    if (!_s.ok()) {                                                     \
      std::fprintf(stderr, "FATAL %s:%d: status not OK: %s\n", __FILE__, \
                   __LINE__, _s.ToString().c_str());                    \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

#ifdef NDEBUG
#define CXLPOOL_DCHECK(expr) \
  do {                       \
  } while (0)
#else
#define CXLPOOL_DCHECK(expr) CXLPOOL_CHECK(expr)
#endif

#endif  // SRC_COMMON_CHECK_H_
