// Byte-size, time, and rate units used throughout the simulator.
//
// Simulated time is int64_t nanoseconds (sim::SimTime, aliased here as
// Nanos). Rates are expressed in bytes per nanosecond (== GB/s numerically),
// which keeps the arithmetic in the bandwidth models trivial.
#ifndef SRC_COMMON_UNITS_H_
#define SRC_COMMON_UNITS_H_

#include <cstdint>

namespace cxlpool {

// --- Byte sizes ---
inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

// CPU cacheline size; also the CXL transfer granule and the slot size of
// the shared-memory message channels (paper §4.1).
inline constexpr uint64_t kCachelineSize = 64;

// --- Time (nanoseconds) ---
using Nanos = int64_t;
inline constexpr Nanos kNanosecond = 1;
inline constexpr Nanos kMicrosecond = 1000;
inline constexpr Nanos kMillisecond = 1000 * kMicrosecond;
inline constexpr Nanos kSecond = 1000 * kMillisecond;

// --- Rates ---
// 1 GB/s == 1e9 bytes / 1e9 ns == 1 byte/ns.
constexpr double GbPerSecToBytesPerNanos(double gigabytes_per_sec) {
  return gigabytes_per_sec;
}

// Network rates are usually quoted in Gbit/s.
constexpr double GbitPerSecToBytesPerNanos(double gigabits_per_sec) {
  return gigabits_per_sec / 8.0;
}

// Round `addr` down/up to a cacheline boundary.
constexpr uint64_t CachelineFloor(uint64_t addr) {
  return addr & ~(kCachelineSize - 1);
}
constexpr uint64_t CachelineCeil(uint64_t addr) {
  return (addr + kCachelineSize - 1) & ~(kCachelineSize - 1);
}

// Number of cachelines touched by the byte range [addr, addr + size).
constexpr uint64_t CachelinesTouched(uint64_t addr, uint64_t size) {
  if (size == 0) {
    return 0;
  }
  return (CachelineCeil(addr + size) - CachelineFloor(addr)) / kCachelineSize;
}

}  // namespace cxlpool

#endif  // SRC_COMMON_UNITS_H_
