// Polling userspace UDP stack in the style of Junction [NSDI'24]: one
// kernel-bypass I/O loop per stack, sockets bound to ports, zero kernel
// involvement. The stack drives a VirtualNic — local or pooled — and takes
// its TX/RX buffers from a BufferPool whose placement (local DRAM vs CXL
// pool) is the Figure 3 experiment variable.
//
// Datagram wire format inside the Ethernet frame payload:
//   [dst_port u16][src_port u16][src_mac u64][payload ...]
#ifndef SRC_STACK_UDP_H_
#define SRC_STACK_UDP_H_

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "src/core/virtual_nic.h"
#include "src/sim/sync.h"
#include "src/stack/buffer_pool.h"

namespace cxlpool::stack {

inline constexpr size_t kUdpHeaderSize = 12;
inline constexpr uint32_t kDefaultMtu = 1514;
// Largest UDP payload that fits one buffer/frame.
inline constexpr uint32_t kMaxUdpPayload = kDefaultMtu - kUdpHeaderSize;

struct Datagram {
  netsim::MacAddr src_mac = 0;
  uint16_t src_port = 0;
  std::vector<std::byte> payload;
};

class UdpStack;

// A bound UDP socket. Obtained from UdpStack::Bind; owned by the stack.
class UdpSocket {
 public:
  UdpSocket(UdpStack* stack, uint16_t port, sim::EventLoop& loop)
      : stack_(stack), port_(port), rx_queue_(loop) {}

  uint16_t port() const { return port_; }
  sim::EventLoop& Loop();

  // Blocks (simulated) until a datagram arrives or `deadline` passes.
  sim::Task<Result<Datagram>> Recv(Nanos deadline);

  // Sends `payload` to (dst_mac, dst_port). Allocates a TX buffer from the
  // stack's pool, publishes the bytes with placement-correct coherence,
  // and queues the frame on the virtual NIC.
  sim::Task<Status> SendTo(netsim::MacAddr dst_mac, uint16_t dst_port,
                           std::span<const std::byte> payload);

 private:
  friend class UdpStack;
  UdpStack* stack_;
  uint16_t port_;
  sim::Queue<Datagram> rx_queue_;
};

class UdpStack {
 public:
  struct Config {
    uint32_t rx_buffers = 128;  // receive buffers kept posted
    Nanos rx_poll_slice = 50 * kMicrosecond;
    // Per-packet CPU cost of stack processing (parse, socket lookup,
    // copies) — Junction-class, not kernel-class.
    Nanos per_packet_cpu = 500;
    // Worker cores processing received packets in parallel (Junction runs
    // several kthreads; one dispatcher + N workers here).
    int worker_cores = 1;
  };

  // `vnic` and `pool` must outlive the stack. `mac` is this stack's
  // address on the fabric (the physical NIC's connected MAC).
  UdpStack(cxl::HostAdapter& host, core::VirtualNic* vnic, BufferPool* pool,
           netsim::MacAddr mac, Config config);

  // Posts initial RX buffers and spawns the I/O loop.
  sim::Task<Status> Start(sim::StopToken& stop);

  Result<UdpSocket*> Bind(uint16_t port);
  Status Close(uint16_t port);

  netsim::MacAddr mac() const { return mac_; }
  cxl::HostAdapter& host() { return host_; }
  core::VirtualNic& vnic() { return *vnic_; }
  BufferPool& pool() { return *pool_; }

  // Failover/migration support: rebinds the virtual NIC to a new MMIO
  // path, reclaims orphaned RX buffers and reposts fresh ones. Wire this
  // into Agent::SetMigrationHandler.
  sim::Task<Status> HandleMigration(std::unique_ptr<core::MmioPath> new_path);

  struct Stats {
    uint64_t tx_datagrams = 0;
    uint64_t rx_datagrams = 0;
    uint64_t rx_no_socket = 0;
    uint64_t tx_no_buffer = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  friend class UdpSocket;

  sim::Task<> IoLoop(sim::StopToken& stop);
  sim::Task<> Worker(sim::StopToken& stop);
  // Parses one received frame and delivers it to its socket.
  sim::Task<> ProcessFrame(core::VirtualNic::RxEvent ev);
  sim::Task<Status> PostRxBuffers();
  // Frees TX buffers whose descriptors completed.
  sim::Task<Status> ReclaimTxBuffers(bool force_refresh);

  cxl::HostAdapter& host_;
  core::VirtualNic* vnic_;
  BufferPool* pool_;
  netsim::MacAddr mac_;
  Config config_;

  std::map<uint16_t, std::unique_ptr<UdpSocket>> sockets_;
  std::deque<core::VirtualNic::RxEvent> work_;  // dispatcher -> workers
  std::vector<uint64_t> posted_rx_;     // addresses currently owned by the NIC
  std::vector<uint64_t> inflight_tx_;   // FIFO of buffers awaiting completion
  uint64_t tx_reclaimed_ = 0;           // completions already processed

  Stats stats_;
};

}  // namespace cxlpool::stack

#endif  // SRC_STACK_UDP_H_
