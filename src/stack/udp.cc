#include "src/stack/udp.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/msg/wire.h"

namespace cxlpool::stack {

using msg::wire::GetU16;
using msg::wire::GetU64;
using msg::wire::PutU16;
using msg::wire::PutU64;

sim::EventLoop& UdpSocket::Loop() { return stack_->host().loop(); }

sim::Task<Result<Datagram>> UdpSocket::Recv(Nanos deadline) {
  sim::EventLoop& loop = stack_->host().loop();
  sim::PollBackoff backoff(100, 500);
  for (;;) {
    Datagram d;
    if (rx_queue_.TryPop(&d)) {
      co_return d;
    }
    Nanos now = loop.now();
    if (now >= deadline) {
      co_return DeadlineExceeded("no datagram before deadline");
    }
    co_await sim::Delay(loop, std::min(backoff.NextDelay(), deadline - now));
  }
}

sim::Task<Status> UdpSocket::SendTo(netsim::MacAddr dst_mac, uint16_t dst_port,
                                    std::span<const std::byte> payload) {
  UdpStack& stack = *stack_;
  if (payload.size() + kUdpHeaderSize > stack.pool().buffer_size()) {
    co_return InvalidArgument("datagram exceeds buffer size");
  }
  CO_RETURN_IF_ERROR(co_await stack.ReclaimTxBuffers(/*force_refresh=*/false));
  auto buf = stack.pool().Alloc();
  if (!buf.ok()) {
    // Out of buffers: force a fresh completion read and retry once.
    CO_RETURN_IF_ERROR(co_await stack.ReclaimTxBuffers(/*force_refresh=*/true));
    buf = stack.pool().Alloc();
    if (!buf.ok()) {
      ++stack.stats_.tx_no_buffer;
      co_return buf.status();
    }
  }

  std::vector<std::byte> frame(kUdpHeaderSize + payload.size());
  PutU16(frame.data(), dst_port);
  PutU16(frame.data() + 2, port_);
  PutU64(frame.data() + 4, stack.mac());
  std::copy(payload.begin(), payload.end(), frame.begin() + kUdpHeaderSize);

  // Publish payload bytes with placement-correct coherence, then hand the
  // buffer to the NIC.
  CO_RETURN_IF_ERROR(co_await stack.pool().memory().Publish(*buf, frame));
  Status st = co_await stack.vnic().SendFrame(dst_mac, *buf,
                                              static_cast<uint32_t>(frame.size()));
  if (!st.ok()) {
    stack.pool().Free(*buf);
    co_return st;
  }
  stack.inflight_tx_.push_back(*buf);
  ++stack.stats_.tx_datagrams;
  co_return OkStatus();
}

UdpStack::UdpStack(cxl::HostAdapter& host, core::VirtualNic* vnic, BufferPool* pool,
                   netsim::MacAddr mac, Config config)
    : host_(host), vnic_(vnic), pool_(pool), mac_(mac), config_(config) {
  CXLPOOL_CHECK(vnic != nullptr && pool != nullptr);
}

sim::Task<Status> UdpStack::Start(sim::StopToken& stop) {
  CO_RETURN_IF_ERROR(co_await PostRxBuffers());
  sim::Spawn(IoLoop(stop));
  for (int i = 0; i < config_.worker_cores; ++i) {
    sim::Spawn(Worker(stop));
  }
  co_return OkStatus();
}

Result<UdpSocket*> UdpStack::Bind(uint16_t port) {
  if (sockets_.contains(port)) {
    return AlreadyExists("port in use");
  }
  auto socket = std::make_unique<UdpSocket>(this, port, host_.loop());
  UdpSocket* raw = socket.get();
  sockets_.emplace(port, std::move(socket));
  return raw;
}

Status UdpStack::Close(uint16_t port) {
  if (sockets_.erase(port) == 0) {
    return NotFound("port not bound");
  }
  return OkStatus();
}

sim::Task<Status> UdpStack::PostRxBuffers() {
  while (posted_rx_.size() < config_.rx_buffers) {
    auto buf = pool_->Alloc();
    if (!buf.ok()) {
      break;  // pool drained; keep what we have
    }
    CO_RETURN_IF_ERROR(co_await vnic_->PostRxBuffer(*buf, pool_->buffer_size()));
    posted_rx_.push_back(*buf);
  }
  co_return co_await vnic_->FlushRxDoorbell();
}

sim::Task<Status> UdpStack::ReclaimTxBuffers(bool force_refresh) {
  uint64_t completed = vnic_->tx_completed_cache();
  if (force_refresh) {
    auto fresh = co_await vnic_->TxCompleted();
    if (!fresh.ok()) {
      co_return fresh.status();
    }
    completed = *fresh;
  }
  while (tx_reclaimed_ < completed && !inflight_tx_.empty()) {
    pool_->Free(inflight_tx_.front());
    inflight_tx_.erase(inflight_tx_.begin());
    ++tx_reclaimed_;
  }
  co_return OkStatus();
}

sim::Task<> UdpStack::IoLoop(sim::StopToken& stop) {
  // Dispatcher core: drains NIC completions into the work queue and keeps
  // the RX ring fed; workers do the per-packet processing.
  while (!stop.stopped()) {
    auto ev = co_await vnic_->PollRx(host_.loop().now() + config_.rx_poll_slice);
    if (!ev.ok()) {
      if (ev.status().code() == StatusCode::kDeadlineExceeded) {
        // Idle slice: harvest TX completions so buffers parked in
        // inflight_tx_ flow back even when nobody is calling SendTo.
        Status st = co_await ReclaimTxBuffers(/*force_refresh=*/true);
        if (st.ok()) {
          st = co_await PostRxBuffers();
        }
        if (!st.ok()) {
          co_return;
        }
        continue;
      }
      co_return;  // NIC path died; a migration will restart traffic
    }
    auto pos = std::find(posted_rx_.begin(), posted_rx_.end(), ev->buf_addr);
    if (pos != posted_rx_.end()) {
      posted_rx_.erase(pos);
    }
    work_.push_back(*ev);
    if (posted_rx_.size() < config_.rx_buffers && pool_->available() == 0) {
      // RX ring is draining the pool dry; pull back completed TX buffers.
      Status st = co_await ReclaimTxBuffers(/*force_refresh=*/true);
      if (!st.ok()) {
        co_return;
      }
    }
    Status st = co_await PostRxBuffers();
    if (!st.ok()) {
      co_return;
    }
  }
}

sim::Task<> UdpStack::Worker(sim::StopToken& stop) {
  sim::PollBackoff backoff(100, 400);
  while (!stop.stopped()) {
    if (work_.empty()) {
      co_await sim::Delay(host_.loop(), backoff.NextDelay());
      continue;
    }
    backoff.Reset();
    core::VirtualNic::RxEvent ev = work_.front();
    work_.pop_front();
    co_await ProcessFrame(ev);
  }
}

sim::Task<> UdpStack::ProcessFrame(core::VirtualNic::RxEvent ev) {
  // Stack processing cost (header parse, socket demux, bookkeeping).
  co_await sim::Delay(host_.loop(), config_.per_packet_cpu);

  // Pull the datagram out of the receive buffer with fresh reads (the
  // NIC DMA-wrote it; a cached copy would be stale in CXL placement).
  std::vector<std::byte> bytes(ev.len);
  Status st = co_await pool_->memory().ReadFresh(ev.buf_addr, bytes);
  pool_->Free(ev.buf_addr);
  if (!st.ok()) {
    co_return;
  }
  if (bytes.size() < kUdpHeaderSize) {
    co_return;  // runt frame
  }
  uint16_t dst_port = GetU16(bytes.data());
  auto it = sockets_.find(dst_port);
  if (it == sockets_.end()) {
    ++stats_.rx_no_socket;
    co_return;
  }
  Datagram d;
  d.src_port = GetU16(bytes.data() + 2);
  d.src_mac = GetU64(bytes.data() + 4);
  d.payload.assign(bytes.begin() + kUdpHeaderSize, bytes.end());
  ++stats_.rx_datagrams;
  it->second->rx_queue_.Push(std::move(d));
}

sim::Task<Status> UdpStack::HandleMigration(std::unique_ptr<core::MmioPath> new_path) {
  CO_RETURN_IF_ERROR(co_await vnic_->Rebind(std::move(new_path)));
  // The old NIC no longer owns any buffers; reclaim everything.
  for (uint64_t addr : posted_rx_) {
    pool_->Free(addr);
  }
  posted_rx_.clear();
  for (uint64_t addr : inflight_tx_) {
    pool_->Free(addr);
  }
  inflight_tx_.clear();
  tx_reclaimed_ = 0;
  co_return co_await PostRxBuffers();
}

}  // namespace cxlpool::stack
