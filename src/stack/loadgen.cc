#include "src/stack/loadgen.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/msg/wire.h"

namespace cxlpool::stack {

namespace {

struct SharedState {
  uint64_t sent = 0;
  uint64_t received = 0;
  int senders_done = 0;
};

sim::Task<> Sender(UdpSocket* sock, netsim::MacAddr dst, uint16_t port,
                   const LoadGenConfig& config, sim::EventLoop& loop,
                   SharedState& state, obs::Counter& overload_skipped,
                   int my_index) {
  sim::Rng rng(config.seed + static_cast<uint64_t>(my_index) * 6151);
  // Each sender carries an equal share of the offered rate; thinning a
  // Poisson process yields a Poisson process.
  double mean_gap = 1e9 * config.senders / config.offered_pps;
  std::vector<std::byte> payload(std::max<uint32_t>(config.payload_bytes, 16),
                                 std::byte{0xcd});
  Nanos end = loop.now() + config.duration;
  while (loop.now() < end) {
    co_await sim::Delay(loop, std::max<Nanos>(1, static_cast<Nanos>(
                                                     rng.Exponential(mean_gap))));
    if (state.sent - state.received >= config.max_outstanding) {
      overload_skipped.Inc();
      continue;
    }
    msg::wire::PutU64(payload.data(), state.sent);
    msg::wire::PutU64(payload.data() + 8, static_cast<uint64_t>(loop.now()));
    Status st = co_await sock->SendTo(dst, port, payload);
    if (!st.ok()) {
      overload_skipped.Inc();  // out of buffers == overloaded
      continue;
    }
    ++state.sent;
  }
  ++state.senders_done;
}

}  // namespace

sim::Task<> RunUdpLoad(UdpSocket* sock, netsim::MacAddr dst_mac,
                       uint16_t dst_port, LoadGenConfig config,
                       obs::Registry& registry, obs::Labels labels) {
  CXLPOOL_CHECK(config.payload_bytes >= 16);
  sim::EventLoop& loop = sock->Loop();
  obs::Counter* sent = registry.GetCounter("udp.sent", labels);
  obs::Counter* received = registry.GetCounter("udp.received", labels);
  obs::Counter* skipped = registry.GetCounter("udp.overload_skipped", labels);
  sim::Histogram* rtt = registry.GetHistogram("udp.rtt_ns", labels);
  obs::Gauge* achieved_pps = registry.GetGauge("udp.achieved_pps", labels);
  obs::Gauge* achieved_mbps = registry.GetGauge("udp.achieved_mbps", labels);
  SharedState state;
  Nanos start = loop.now();
  Nanos measure_from = start + config.warmup;
  Nanos measure_until = start + config.duration;

  for (int s = 0; s < config.senders; ++s) {
    sim::Spawn(Sender(sock, dst_mac, dst_port, config, loop, state, *skipped, s));
  }

  uint64_t measured_responses = 0;
  uint64_t measured_bytes = 0;
  Nanos grace = 2 * kMillisecond;
  while (!(state.senders_done == config.senders && state.received >= state.sent) &&
         loop.now() < measure_until + grace) {
    auto d = co_await sock->Recv(loop.now() + 200 * kMicrosecond);
    if (!d.ok()) {
      continue;
    }
    ++state.received;
    if (d->payload.size() < 16) {
      continue;
    }
    Nanos sent_at =
        static_cast<Nanos>(msg::wire::GetU64(d->payload.data() + 8));
    Nanos now = loop.now();
    if (sent_at >= measure_from && now <= measure_until) {
      rtt->Add(now - sent_at);
      ++measured_responses;
      measured_bytes += d->payload.size();
    }
  }

  sent->Add(state.sent);
  received->Add(state.received);
  double window = static_cast<double>(measure_until - measure_from);
  if (window > 0) {
    achieved_pps->Set(static_cast<int64_t>(
        1e9 * static_cast<double>(measured_responses) / window));
    // bits per ns == Gbit/s; export as Mbit/s to keep integer resolution.
    achieved_mbps->Set(static_cast<int64_t>(
        8000.0 * static_cast<double>(measured_bytes) / window));
  }
}

}  // namespace cxlpool::stack
