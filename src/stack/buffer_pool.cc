#include "src/stack/buffer_pool.h"

#include <algorithm>

#include "src/common/check.h"

namespace cxlpool::stack {

Result<std::unique_ptr<BufferPool>> BufferPool::Create(cxl::HostAdapter& host,
                                                       Placement placement,
                                                       uint32_t buffer_count,
                                                       uint32_t buffer_size) {
  if (buffer_count == 0 || buffer_size == 0) {
    return InvalidArgument("empty buffer pool");
  }
  // Cacheline-align buffers so no two buffers share a line (false sharing
  // across the coherence boundary would corrupt data).
  buffer_size = static_cast<uint32_t>(CachelineCeil(buffer_size));

  auto pool = std::unique_ptr<BufferPool>(
      new BufferPool(host, placement, buffer_count, buffer_size));
  uint64_t bytes = static_cast<uint64_t>(buffer_count) * buffer_size;
  if (placement == Placement::kCxlPool) {
    ASSIGN_OR_RETURN(pool->segment_, host.cxl_pool().Allocate(bytes));
    pool->base_ = pool->segment_.base;
    pool->owns_segment_ = true;
  } else {
    ASSIGN_OR_RETURN(pool->base_, host.AllocateDram(bytes));
  }
  pool->free_.reserve(buffer_count);
  for (uint32_t i = 0; i < buffer_count; ++i) {
    pool->free_.push_back(pool->base_ + static_cast<uint64_t>(i) * buffer_size);
  }
  return pool;
}

BufferPool::~BufferPool() {
  if (owns_segment_) {
    (void)host_.cxl_pool().Free(segment_);
  }
}

Result<uint64_t> BufferPool::Alloc() {
  if (free_.empty()) {
    return ResourceExhausted("buffer pool empty");
  }
  uint64_t addr = free_.back();
  free_.pop_back();
  return addr;
}

void BufferPool::Free(uint64_t addr) {
  CXLPOOL_DCHECK(addr >= base_ &&
                 addr < base_ + static_cast<uint64_t>(buffer_count_) * buffer_size_);
  CXLPOOL_DCHECK((addr - base_) % buffer_size_ == 0);
  free_.push_back(addr);
}

}  // namespace cxlpool::stack
