// Open-loop UDP load generator and latency collector — the measurement
// client of the Figure 3 experiment. Requests arrive Poisson at the
// offered rate; every datagram carries a sequence number and send
// timestamp so the receiver side computes RTTs without shared state.
//
// Results land in an obs::Registry under the caller's label set (the last
// bespoke stats struct on the stack path is gone):
//   udp.sent / udp.received / udp.overload_skipped   counters
//   udp.rtt_ns                                       histogram (post-warmup)
//   udp.achieved_pps                                 gauge (responses/s)
//   udp.achieved_mbps                                gauge (payload Mbit/s)
// Callers read them back via Registry::FindCounter / FindHistogram with the
// same labels they passed in.
#ifndef SRC_STACK_LOADGEN_H_
#define SRC_STACK_LOADGEN_H_

#include "src/obs/registry.h"
#include "src/sim/random.h"
#include "src/sim/stats.h"
#include "src/stack/udp.h"

namespace cxlpool::stack {

struct LoadGenConfig {
  double offered_pps = 100000;     // Poisson arrival rate
  uint32_t payload_bytes = 512;    // >= 16 (seq + timestamp header)
  Nanos duration = 20 * kMillisecond;
  Nanos warmup = 4 * kMillisecond;  // samples before this are discarded
  uint64_t seed = 99;
  // Arrivals are skipped (counted as overload_skipped) while more than
  // this many requests are outstanding, bounding buffer usage open-loop.
  uint64_t max_outstanding = 512;
  // Concurrent sender coroutines (each carries offered_pps / senders); a
  // single sender cannot exceed ~1/(SendTo cost) packets per second.
  int senders = 8;
};

// Drives an echo service at (dst_mac, dst_port) from `sock`. Returns when
// `duration` has elapsed plus a small drain grace period. Metrics are
// recorded into `registry` under `labels` (see the series list above).
sim::Task<> RunUdpLoad(UdpSocket* sock, netsim::MacAddr dst_mac,
                       uint16_t dst_port, LoadGenConfig config,
                       obs::Registry& registry, obs::Labels labels = {});

}  // namespace cxlpool::stack

#endif  // SRC_STACK_LOADGEN_H_
