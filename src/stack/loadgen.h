// Open-loop UDP load generator and latency collector — the measurement
// client of the Figure 3 experiment. Requests arrive Poisson at the
// offered rate; every datagram carries a sequence number and send
// timestamp so the receiver side computes RTTs without shared state.
#ifndef SRC_STACK_LOADGEN_H_
#define SRC_STACK_LOADGEN_H_

#include "src/sim/random.h"
#include "src/sim/stats.h"
#include "src/stack/udp.h"

namespace cxlpool::stack {

struct LoadGenConfig {
  double offered_pps = 100000;     // Poisson arrival rate
  uint32_t payload_bytes = 512;    // >= 16 (seq + timestamp header)
  Nanos duration = 20 * kMillisecond;
  Nanos warmup = 4 * kMillisecond;  // samples before this are discarded
  uint64_t seed = 99;
  // Arrivals are skipped (counted as overload_skipped) while more than
  // this many requests are outstanding, bounding buffer usage open-loop.
  uint64_t max_outstanding = 512;
  // Concurrent sender coroutines (each carries offered_pps / senders); a
  // single sender cannot exceed ~1/(SendTo cost) packets per second.
  int senders = 8;
};

struct LoadGenReport {
  sim::Histogram rtt;  // ns, post-warmup
  uint64_t sent = 0;
  uint64_t received = 0;
  uint64_t overload_skipped = 0;
  double achieved_pps = 0;   // response rate over the measured window
  double achieved_gbps = 0;  // response goodput (payload bits)
};

// Drives an echo service at (dst_mac, dst_port) from `sock`. Returns when
// `duration` has elapsed plus a small drain grace period.
sim::Task<LoadGenReport> RunUdpLoad(UdpSocket* sock, netsim::MacAddr dst_mac,
                                    uint16_t dst_port, LoadGenConfig config);

}  // namespace cxlpool::stack

#endif  // SRC_STACK_LOADGEN_H_
