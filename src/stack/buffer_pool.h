// Fixed-size I/O buffer pool with pluggable placement — the experimental
// knob of Figure 3. The paper modifies Junction to allocate TX/RX buffers
// from the CXL memory pool instead of local memory; here the same stack
// code runs against either placement and the PlacedMemory accessors apply
// software coherence exactly when the placement demands it.
#ifndef SRC_STACK_BUFFER_POOL_H_
#define SRC_STACK_BUFFER_POOL_H_

#include <memory>
#include <vector>

#include "src/core/placed_memory.h"
#include "src/cxl/pool.h"

namespace cxlpool::stack {

enum class Placement : uint8_t {
  kLocalDram,
  kCxlPool,
};

class BufferPool {
 public:
  static Result<std::unique_ptr<BufferPool>> Create(cxl::HostAdapter& host,
                                                    Placement placement,
                                                    uint32_t buffer_count,
                                                    uint32_t buffer_size);
  ~BufferPool();

  // Pops a free buffer; kResourceExhausted when empty.
  Result<uint64_t> Alloc();
  void Free(uint64_t addr);

  Placement placement() const { return placement_; }
  uint32_t buffer_size() const { return buffer_size_; }
  size_t available() const { return free_.size(); }
  size_t capacity() const { return buffer_count_; }
  // Base address of the backing region; buffer i lives at
  // base() + i * buffer_size(). Chaos harnesses use this to aim media
  // faults (line poison) at live value buffers.
  uint64_t base() const { return base_; }

  // Coherence-correct accessors for buffer contents.
  core::PlacedMemory& memory() { return mem_; }

 private:
  BufferPool(cxl::HostAdapter& host, Placement placement, uint32_t buffer_count,
             uint32_t buffer_size)
      : placement_(placement),
        buffer_count_(buffer_count),
        buffer_size_(buffer_size),
        mem_(host, placement == Placement::kCxlPool),
        host_(host) {}

  Placement placement_;
  uint32_t buffer_count_;
  uint32_t buffer_size_;
  core::PlacedMemory mem_;
  cxl::HostAdapter& host_;
  cxl::PoolSegment segment_;
  bool owns_segment_ = false;
  uint64_t base_ = 0;
  std::vector<uint64_t> free_;
};

}  // namespace cxlpool::stack

#endif  // SRC_STACK_BUFFER_POOL_H_
