// Square-root-staffing model behind the paper's §2.1 estimate: "if demands
// across servers were independent, then the fraction of stranded resources
// would decrease with sqrt(N)" [Janssen & van Leeuwaarden; Whitt].
//
// Per-host demand for a pooled resource is modeled as an i.i.d. random
// variable calibrated so that per-host provisioning at the target quantile
// leaves the observed headroom (54% for SSD, 29% for NIC in Figure 2).
// Pooling N hosts provisions one budget for the pod at the same quantile
// of the aggregate demand; the buffer shrinks by sqrt(N), and so does the
// hardware the pod must buy — which feeds the TCO model.
#ifndef SRC_STRANDING_STAFFING_H_
#define SRC_STRANDING_STAFFING_H_

#include <vector>

#include "src/sim/random.h"

namespace cxlpool::strand {

struct StaffingConfig {
  // Mean per-host demand and its standard deviation, as fractions of the
  // N=1 provisioned capacity (so provisioned_1 == 1.0 by construction
  // when calibrated).
  double mean_demand = 0.46;
  double demand_sigma = 0.232;
  // Provisioning service level: capacity covers this quantile of demand.
  double target_quantile = 0.99;
  int draws = 20000;
  uint64_t seed = 7;
};

// Calibrates (mean, sigma) so that single-host provisioning at the target
// quantile strands `stranded_frac` of capacity (e.g. 0.54 for SSD).
StaffingConfig CalibrateStaffing(double stranded_frac, double target_quantile = 0.99,
                                 int draws = 20000, uint64_t seed = 7);

struct StaffingPoint {
  int pod_size = 1;
  // Capacity provisioned per host (pod budget / N), relative to the N=1
  // provisioned capacity.
  double provisioned_per_host = 1.0;
  // Fraction of the provisioned capacity that sits idle in expectation.
  double stranded = 0.0;
  // provisioned_per_host itself == fleet fraction vs per-host baseline;
  // (1 - this) is the capex the pool avoids.
  double fleet_fraction = 1.0;
};

// Monte-Carlo: draws pod demand (sum of N truncated-normal host demands),
// provisions the pod at the target quantile, reports expected stranding.
StaffingPoint SimulateStaffing(const StaffingConfig& config, int pod_size);

// Closed-form normal approximation: C_N = N*mu + z*sigma*sqrt(N).
StaffingPoint AnalyticStaffing(const StaffingConfig& config, int pod_size);

}  // namespace cxlpool::strand

#endif  // SRC_STRANDING_STAFFING_H_
