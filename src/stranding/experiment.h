// Multi-trial stranding experiment driver: each trial perturbs the VM mix
// (cluster-to-cluster workload variation) and packs a fresh cluster,
// producing the stranding distribution Figure 2 plots.
#ifndef SRC_STRANDING_EXPERIMENT_H_
#define SRC_STRANDING_EXPERIMENT_H_

#include <array>
#include <vector>

#include "src/sim/stats.h"
#include "src/stranding/binpack.h"

namespace cxlpool::strand {

struct TrialSeries {
  std::array<sim::Summary, kResourceCount> stranded;
  std::array<std::vector<double>, kResourceCount> samples;
  double mean_vms_placed = 0;

  // Percentile over the per-trial samples (p in [0,1]).
  double Percentile(Resource r, double p) const;
};

struct ExperimentConfig {
  ClusterConfig cluster;  // per-host skew comes from cluster.per_host_sigma
  int trials = 30;
  uint64_t seed = 42;
};

TrialSeries RunTrials(const ExperimentConfig& config);

}  // namespace cxlpool::strand

#endif  // SRC_STRANDING_EXPERIMENT_H_
