// Multi-dimensional bin packing of VM demands onto hosts, with optional
// pod-level pooling of selected dimensions (§2.1: pooling across N servers
// makes the effective bin shape flexible and cuts stranding ~1/sqrt(N)).
//
// Stranding in production is dominated by *variance*: placement
// constraints (zones, anti-affinity, tenant grouping) skew each host's
// workload mix, so hosts bind on different dimensions and strand the
// rest. The model captures this by giving every host its own perturbed
// arrival stream; hosts fill round-robin, drawing pooled dimensions
// (SSD/NIC under CXL pooling) from their pod's shared budget — which is
// precisely how pooling cancels cross-host variance.
#ifndef SRC_STRANDING_BINPACK_H_
#define SRC_STRANDING_BINPACK_H_

#include <array>
#include <vector>

#include "src/stranding/workload.h"

namespace cxlpool::strand {

struct ClusterConfig {
  int num_hosts = 96;
  HostShape host;
  // Per-host workload skew: lognormal sigma applied independently to each
  // host's VM-type weights. 0 = every host sees the identical global mix.
  double per_host_sigma = 1.1;
  // A host stops accepting once this many consecutive arrivals from its
  // stream fail to fit.
  int fail_streak_to_stop = 24;
  // Hosts are grouped into pods of this size; dimensions flagged in
  // `pooled` are provided at pod granularity (CXL-pooled SSD/NIC).
  // pod_size 1 == today's per-host provisioning.
  int pod_size = 1;
  std::array<bool, kResourceCount> pooled = {false, false, false, false};
};

struct StrandingResult {
  // Fraction of total capacity left unusable per resource at cluster-full.
  std::array<double, kResourceCount> stranded{};
  int vms_placed = 0;
};

// Fills every host from its own perturbed stream (round-robin so pod
// budgets are shared fairly) and returns the stranding snapshot.
StrandingResult PackCluster(const ClusterConfig& config,
                            const std::vector<VmType>& catalog, uint64_t seed);

// Convenience: pooled SSD+NIC configuration used throughout the paper.
ClusterConfig PooledSsdNicConfig(int num_hosts, int pod_size);

// The paper's back-of-envelope model: stranding falls with sqrt(N) when
// demands are independent (§2.1, citing square-root staffing).
double SqrtNEstimate(double baseline_stranding, int pod_size);

}  // namespace cxlpool::strand

#endif  // SRC_STRANDING_BINPACK_H_
