#include "src/stranding/workload.h"

#include <cmath>

#include "src/common/check.h"

namespace cxlpool::strand {

std::string_view ResourceName(Resource r) {
  switch (r) {
    case kCores:
      return "cores";
    case kMemory:
      return "memory";
    case kSsd:
      return "ssd";
    case kNic:
      return "nic";
    default:
      return "?";
  }
}

ResourceVector& ResourceVector::operator+=(const ResourceVector& o) {
  for (int i = 0; i < kResourceCount; ++i) {
    v[i] += o.v[i];
  }
  return *this;
}

ResourceVector& ResourceVector::operator-=(const ResourceVector& o) {
  for (int i = 0; i < kResourceCount; ++i) {
    v[i] -= o.v[i];
  }
  return *this;
}

bool ResourceVector::Fits(const ResourceVector& o) const {
  for (int i = 0; i < kResourceCount; ++i) {
    if (o.v[i] > v[i] + 1e-9) {
      return false;
    }
  }
  return true;
}

namespace {
VmType Make(std::string name, double cores, double mem, double ssd, double nic,
            double weight) {
  VmType t;
  t.name = std::move(name);
  t.demand.v = {cores, mem, ssd, nic};
  t.weight = weight;
  return t;
}
}  // namespace

std::vector<VmType> DefaultVmCatalog() {
  // Calibrated (see tests/stranding_test.cc and bench/fig2_stranding) so
  // that per-host packing strands ~54% SSD / ~29% NIC on average, with
  // memory the binding dimension — the Figure 2 shape.
  return {
      Make("gp-small", 2, 8, 32, 1.8, 30),
      Make("gp-medium", 4, 16, 72, 3.0, 25),
      Make("gp-large", 8, 32, 176, 5.5, 15),
      Make("compute-opt", 16, 32, 64, 6.0, 8),
      Make("mem-opt-m", 4, 32, 72, 3.0, 10),
      Make("mem-opt-l", 8, 64, 192, 5.5, 6),
      Make("storage-opt", 8, 64, 1152, 10.0, 4),
      Make("net-heavy", 8, 32, 64, 32.0, 3),
  };
}

HostShape DefaultHostShape() {
  HostShape h;
  h.capacity.v = {96, 384, 4096, 100};  // cores, GiB, GiB, Gbit/s
  return h;
}

VmArrivalGenerator::VmArrivalGenerator(std::vector<VmType> catalog, uint64_t seed)
    : catalog_(std::move(catalog)), rng_(seed) {
  CXLPOOL_CHECK(!catalog_.empty());
  weights_.reserve(catalog_.size());
  for (const VmType& t : catalog_) {
    weights_.push_back(t.weight);
  }
}

const VmType& VmArrivalGenerator::Next() {
  return catalog_[rng_.Categorical(weights_)];
}

void VmArrivalGenerator::PerturbWeights(double sigma) {
  for (double& w : weights_) {
    w *= rng_.LogNormal(-sigma * sigma / 2, sigma);
  }
}

}  // namespace cxlpool::strand
