// Workload model for the resource-stranding experiments (paper §2.1,
// Figure 2): heterogeneous VM types bin-packed onto hosts until the
// cluster stops accepting the mix, leaving some dimensions saturated and
// the rest stranded.
//
// The paper reports Azure production stranding (SSD 54%, NIC 29% stranded
// on average, CPU and memory far lower). We have no production traces, so
// a synthetic VM catalog is calibrated until plain per-host packing
// reproduces those averages; the *relative ordering and magnitudes* are
// what the paper's argument uses.
#ifndef SRC_STRANDING_WORKLOAD_H_
#define SRC_STRANDING_WORKLOAD_H_

#include <array>
#include <string>
#include <vector>

#include "src/sim/random.h"

namespace cxlpool::strand {

// Resource dimensions tracked per host/VM.
enum Resource : int {
  kCores = 0,
  kMemory = 1,  // GiB
  kSsd = 2,     // GiB
  kNic = 3,     // Gbit/s
  kResourceCount = 4,
};

std::string_view ResourceName(Resource r);

struct ResourceVector {
  std::array<double, kResourceCount> v{};

  double& operator[](int i) { return v[i]; }
  double operator[](int i) const { return v[i]; }

  ResourceVector& operator+=(const ResourceVector& o);
  ResourceVector& operator-=(const ResourceVector& o);
  // True if every dimension of `o` fits into this remaining capacity.
  bool Fits(const ResourceVector& o) const;
};

struct VmType {
  std::string name;
  ResourceVector demand;
  double weight = 1.0;  // relative arrival frequency
};

// A host SKU: total capacity per dimension.
struct HostShape {
  ResourceVector capacity;
};

// Azure-like general-purpose fleet: a dozen VM sizes across general,
// compute-, memory-optimized and storage families. Calibrated so that
// per-host first-fit packing strands ≈54% SSD and ≈29% NIC on average
// (Figure 2).
std::vector<VmType> DefaultVmCatalog();
HostShape DefaultHostShape();

// Draws VM indices from the catalog with weight-proportional probability.
class VmArrivalGenerator {
 public:
  VmArrivalGenerator(std::vector<VmType> catalog, uint64_t seed);

  const VmType& Next();
  const std::vector<VmType>& catalog() const { return catalog_; }

  // Perturbs type weights multiplicatively (lognormal factor) to model
  // cluster-to-cluster workload variation; used to produce the stranding
  // distribution, not just the mean.
  void PerturbWeights(double sigma);

 private:
  std::vector<VmType> catalog_;
  sim::Rng rng_;
  std::vector<double> weights_;
};

}  // namespace cxlpool::strand

#endif  // SRC_STRANDING_WORKLOAD_H_
