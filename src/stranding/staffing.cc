#include "src/stranding/staffing.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace cxlpool::strand {

namespace {

// Inverse standard normal CDF (Acklam's rational approximation; adequate
// for quantiles in [0.5, 0.9999]).
double InverseNormalCdf(double p) {
  CXLPOOL_CHECK(p > 0 && p < 1);
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  if (p < plow) {
    double q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > 1 - plow) {
    double q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  double q = p - 0.5;
  double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

}  // namespace

StaffingConfig CalibrateStaffing(double stranded_frac, double target_quantile,
                                 int draws, uint64_t seed) {
  CXLPOOL_CHECK(stranded_frac > 0 && stranded_frac < 1);
  // With C_1 normalized to 1: stranded = (1 - mu) => mu = 1 - stranded,
  // and 1 = mu + z*sigma => sigma = stranded / z.
  double z = InverseNormalCdf(target_quantile);
  StaffingConfig config;
  config.mean_demand = 1.0 - stranded_frac;
  config.demand_sigma = stranded_frac / z;
  config.target_quantile = target_quantile;
  config.draws = draws;
  config.seed = seed;
  return config;
}

StaffingPoint SimulateStaffing(const StaffingConfig& config, int pod_size) {
  CXLPOOL_CHECK(pod_size >= 1);
  CXLPOOL_CHECK(config.draws > 1);
  sim::Rng rng(config.seed + static_cast<uint64_t>(pod_size) * 10007);

  std::vector<double> pod_demand(config.draws);
  double total = 0;
  for (int d = 0; d < config.draws; ++d) {
    double sum = 0;
    for (int h = 0; h < pod_size; ++h) {
      sum += std::max(0.0, rng.Normal(config.mean_demand, config.demand_sigma));
    }
    pod_demand[d] = sum;
    total += sum;
  }
  std::sort(pod_demand.begin(), pod_demand.end());
  size_t idx = static_cast<size_t>(config.target_quantile *
                                   static_cast<double>(config.draws - 1));
  double provisioned = pod_demand[idx];
  double mean = total / config.draws;

  StaffingPoint p;
  p.pod_size = pod_size;
  p.provisioned_per_host = provisioned / pod_size;
  p.stranded = provisioned > 0 ? 1.0 - mean / provisioned : 0.0;
  p.fleet_fraction = p.provisioned_per_host;
  return p;
}

StaffingPoint AnalyticStaffing(const StaffingConfig& config, int pod_size) {
  double z = InverseNormalCdf(config.target_quantile);
  double n = pod_size;
  double provisioned = n * config.mean_demand +
                       z * config.demand_sigma * std::sqrt(n);
  StaffingPoint p;
  p.pod_size = pod_size;
  p.provisioned_per_host = provisioned / n;
  p.stranded = 1.0 - n * config.mean_demand / provisioned;
  p.fleet_fraction = p.provisioned_per_host;
  return p;
}

}  // namespace cxlpool::strand
