#include "src/stranding/binpack.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/common/check.h"

namespace cxlpool::strand {

namespace {

struct HostState {
  ResourceVector remaining;  // pooled dims zeroed (tracked in the pod)
  std::unique_ptr<VmArrivalGenerator> stream;
  int fail_streak = 0;
  bool active = true;
};

struct PodState {
  ResourceVector remaining;  // only pooled dims meaningful
};

}  // namespace

StrandingResult PackCluster(const ClusterConfig& config,
                            const std::vector<VmType>& catalog, uint64_t seed) {
  CXLPOOL_CHECK(config.num_hosts > 0);
  CXLPOOL_CHECK(config.pod_size > 0);
  CXLPOOL_CHECK(config.num_hosts % config.pod_size == 0);

  const ResourceVector& cap = config.host.capacity;
  int num_pods = config.num_hosts / config.pod_size;

  std::vector<HostState> hosts(config.num_hosts);
  std::vector<PodState> pods(num_pods);
  for (int h = 0; h < config.num_hosts; ++h) {
    for (int r = 0; r < kResourceCount; ++r) {
      hosts[h].remaining[r] = config.pooled[r] ? 0.0 : cap[r];
    }
    hosts[h].stream = std::make_unique<VmArrivalGenerator>(
        catalog, seed * 1000003 + static_cast<uint64_t>(h));
    if (config.per_host_sigma > 0) {
      hosts[h].stream->PerturbWeights(config.per_host_sigma);
    }
  }
  for (int p = 0; p < num_pods; ++p) {
    for (int r = 0; r < kResourceCount; ++r) {
      pods[p].remaining[r] = config.pooled[r] ? cap[r] * config.pod_size : 0.0;
    }
  }

  StrandingResult result;
  // Round-robin across hosts so pod budgets are shared fairly instead of
  // being drained by whichever host fills first.
  int active = config.num_hosts;
  while (active > 0) {
    for (int h = 0; h < config.num_hosts; ++h) {
      HostState& host = hosts[h];
      if (!host.active) {
        continue;
      }
      PodState& pod = pods[h / config.pod_size];
      const VmType& vm = host.stream->Next();
      bool fits = true;
      for (int r = 0; r < kResourceCount; ++r) {
        double avail = config.pooled[r] ? pod.remaining[r] : host.remaining[r];
        if (vm.demand[r] > avail + 1e-9) {
          fits = false;
          break;
        }
      }
      if (!fits) {
        if (++host.fail_streak >= config.fail_streak_to_stop) {
          host.active = false;
          --active;
        }
        continue;
      }
      host.fail_streak = 0;
      ++result.vms_placed;
      for (int r = 0; r < kResourceCount; ++r) {
        if (config.pooled[r]) {
          pod.remaining[r] -= vm.demand[r];
        } else {
          host.remaining[r] -= vm.demand[r];
        }
      }
    }
  }

  for (int r = 0; r < kResourceCount; ++r) {
    double total = cap[r] * config.num_hosts;
    if (total <= 0) {
      continue;
    }
    double left = 0;
    if (config.pooled[r]) {
      for (const PodState& p : pods) {
        left += p.remaining[r];
      }
    } else {
      for (const HostState& h : hosts) {
        left += h.remaining[r];
      }
    }
    result.stranded[r] = left / total;
  }
  return result;
}

ClusterConfig PooledSsdNicConfig(int num_hosts, int pod_size) {
  ClusterConfig c;
  c.num_hosts = num_hosts;
  c.host = DefaultHostShape();
  c.pod_size = pod_size;
  if (pod_size > 1) {
    c.pooled[kSsd] = true;
    c.pooled[kNic] = true;
  }
  return c;
}

double SqrtNEstimate(double baseline_stranding, int pod_size) {
  CXLPOOL_CHECK(pod_size >= 1);
  return baseline_stranding / std::sqrt(static_cast<double>(pod_size));
}

}  // namespace cxlpool::strand
