#include "src/stranding/experiment.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace cxlpool::strand {

double TrialSeries::Percentile(Resource r, double p) const {
  std::vector<double> sorted = samples[r];
  if (sorted.empty()) {
    return 0.0;
  }
  std::sort(sorted.begin(), sorted.end());
  double idx = std::clamp(p, 0.0, 1.0) * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

TrialSeries RunTrials(const ExperimentConfig& config) {
  CXLPOOL_CHECK(config.trials > 0);
  TrialSeries series;
  double placed = 0;
  std::vector<VmType> catalog = DefaultVmCatalog();
  for (int t = 0; t < config.trials; ++t) {
    StrandingResult result =
        PackCluster(config.cluster, catalog, config.seed + static_cast<uint64_t>(t));
    for (int r = 0; r < kResourceCount; ++r) {
      series.stranded[r].Add(result.stranded[r]);
      series.samples[r].push_back(result.stranded[r]);
    }
    placed += result.vms_placed;
  }
  series.mean_vms_placed = placed / config.trials;
  return series;
}

}  // namespace cxlpool::strand
